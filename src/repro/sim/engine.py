"""The discrete-event engine: a time-ordered callback queue.

The engine owns the simulated clock (integer picoseconds) and a binary
heap of pending callbacks.  Ties at the same timestamp are broken by
insertion order, which makes every simulation fully deterministic.

The engine itself knows nothing about processes or resources; those are
layered on top in :mod:`repro.sim.process` and
:mod:`repro.sim.resources`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Protocol

from repro.errors import SimulationError
from repro.sim.snapshot import SnapshotMixin

Callback = Callable[[], Any]


class InjectionClock(Protocol):
    """Duck type of :class:`repro.faults.clock.FaultClock`.

    The engine stays ignorant of the faults package (layering: ``sim``
    is the bottom of the stack); anything with a ``check(now_ps, site)``
    that may raise to abandon the run can be installed.
    """

    def check(self, now_ps: int, site: str) -> None: ...


class Engine(SnapshotMixin):
    """Event queue and simulated clock.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.call_at(100, lambda: hits.append(eng.now))
    >>> _ = eng.call_at(50, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [50, 100]
    """

    #: Events executed by *every* engine in this process.  The perf
    #: bench harness snapshots this around an experiment to report
    #: events/sec without threading a counter through model layers.
    total_events_executed: int = 0

    def __init__(self) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, Callback]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self._fault_clock: InjectionClock | None = None
        self._forks: list[tuple[int, Callable[["Engine"], Any]]] = []

    def install_fault_clock(self, clock: InjectionClock | None) -> None:
        """Attach (or with ``None`` detach) a fault-injection clock.

        While installed, the clock's ``check`` runs before every event
        dispatch with the event's timestamp and site ``"engine"``; a
        raising check (power loss) abandons the run mid-queue, leaving
        undelivered events pending — exactly the state a campaign's
        drain-and-recover path wants to inspect.  The common
        (no-clock) dispatch path stays a single local ``is None`` test.
        """
        self._fault_clock = clock

    def fork_at(self, event_index: int,
                action: Callable[["Engine"], Any]) -> None:
        """Run ``action(self)`` at the first dispatch boundary where the
        installed fault clock's ``events_seen`` has reached
        ``event_index``.

        This is the snapshot hook point: dispatch boundaries are the
        only engine states with no callback frame live on the stack, so
        the whole simulation graph is quiescent and capturable.  The
        index shares the :meth:`FaultClock.cut_on_event
        <repro.faults.clock.FaultClock.cut_on_event>` numbering — a
        capture from ``fork_at(i)`` can serve any cut armed at an index
        greater than ``i``.  Actions registered out of order are
        sorted; each fires exactly once.  Without an installed fault
        clock there is no event numbering and the hooks stay dormant.
        """
        if event_index < 0:
            raise SimulationError(
                f"fork event index must be >= 0: {event_index}")
        self._forks.append((event_index, action))
        self._forks.sort(key=lambda pair: pair[0])

    def _service_forks(self) -> None:
        clock = self._fault_clock
        if clock is None:
            return
        seen = getattr(clock, "events_seen", 0)
        while self._forks and self._forks[0][0] <= seen:
            _index, action = self._forks.pop(0)
            action(self)

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def call_at(self, time_ps: int, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time_ps} < now {self._now}"
            )
        heapq.heappush(self._heap, (time_ps, self._seq, callback))
        self._seq += 1

    def call_after(self, delay_ps: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        self.call_at(self._now + delay_ps, callback)

    def call_at_many(self,
                     items: Iterable[tuple[int, Callback]]) -> None:
        """Batch-schedule ``(time_ps, callback)`` pairs.

        Equivalent to ``call_at`` per pair (same ordering guarantees:
        time-sorted, ties broken by position in ``items``), but pays the
        attribute/validation overhead once for the whole batch.  The
        periodic refresh scheduler uses this to arm a horizon of PREA+REF
        slots in one call instead of one wakeup per tREFI.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        try:
            for time_ps, callback in items:
                if time_ps < now:
                    raise SimulationError(
                        f"cannot schedule into the past: {time_ps} < "
                        f"now {now}")
                push(heap, (time_ps, seq, callback))
                seq += 1
        finally:
            self._seq = seq

    def peek(self) -> int | None:
        """Timestamp of the next pending event, or None if queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        if not self._heap:
            return False
        if self._forks:
            self._service_forks()
        if self._fault_clock is not None:
            self._fault_clock.check(self._heap[0][0], "engine")
        time_ps, _seq, callback = heapq.heappop(self._heap)
        self._now = time_ps
        self.events_executed += 1
        Engine.total_events_executed += 1
        callback()
        return True

    def run(self, until: int | None = None,
            max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        When stopping at ``until`` the clock is advanced to exactly
        ``until`` even if no event lands there, so back-to-back ``run``
        calls observe a monotonic clock.

        The dispatch loop is inlined (rather than calling :meth:`step`)
        with the heap and ``heappop`` bound to locals: this is the single
        hottest loop in the simulator and the per-event attribute lookups
        were measurable.  Behaviour is identical to repeated ``step()``,
        except that ``events_executed`` is settled when the loop exits
        rather than per event (callbacks should not read it mid-run).
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        clock = self._fault_clock
        forks = self._forks
        executed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if forks:
                    self._service_forks()
                if clock is not None:
                    clock.check(heap[0][0], "engine")
                time_ps, _seq, callback = pop(heap)
                self._now = time_ps
                executed += 1
                callback()
        finally:
            self._running = False
            self.events_executed += executed
            Engine.total_events_executed += executed
        if until is not None and self._now < until:
            self._now = until

    def drain(self) -> None:
        """Discard all pending events without running them."""
        self._heap.clear()

    @property
    def pending(self) -> int:
        """Number of callbacks still queued."""
        return len(self._heap)

    @property
    def running(self) -> bool:
        """True while inside :meth:`run` (reentrant calls are illegal)."""
        return self._running

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self._now}, pending={len(self._heap)})"
