"""Discrete-event simulation kernel.

A compact generator-based DES in the style of SimPy, specialised for the
NVDIMM-C simulator: integer picosecond time, deterministic FIFO tie
breaking, and structured tracing.

Public surface:

* :class:`~repro.sim.engine.Engine` — event queue and simulated clock.
* :class:`~repro.sim.process.Process` / ``Timeout`` / ``Event`` — the
  coroutine layer (``yield Timeout(...)`` etc. from process generators).
* :class:`~repro.sim.resources.Resource` / ``Store`` / ``Lock`` — queueing
  primitives built on the coroutine layer.
* :class:`~repro.sim.trace.Tracer` — structured event capture.
"""

from repro.sim.engine import Engine
from repro.sim.process import Event, Process, Timeout
from repro.sim.resources import Lock, Resource, Store
from repro.sim.trace import (NULL_TRACER, TraceRecord, Tracer,
                             default_tracer, set_default_tracer, use_tracer)

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Lock",
    "Resource",
    "Store",
    "TraceRecord",
    "Tracer",
    "NULL_TRACER",
    "default_tracer",
    "set_default_tracer",
    "use_tracer",
]
