"""The JEDEC NVDIMM family (§VIII), modelled for comparison.

* **NVDIMM-N** — a conventional DIMM plus NAND for backup: full DRAM
  speed and byte-addressability, but capacity = the DRAM's, and
  persistence relies on super-capacitors holding the module up long
  enough to copy *all* of DRAM to NAND on power failure.
* **NVDIMM-F** — NAND + controller, no DRAM: large and persistent but
  block-access only, at NAND latency.
* **NVDIMM-P / DDR-T** — the hybrid done with a *new protocol*: needs
  a non-deterministic memory controller in the CPU (the compatibility
  cost NVDIMM-C exists to avoid).
* **NVDIMM-C** — this paper: hybrid capacity, byte-addressable,
  standard iMC; pays with the DRAM-cache miss path.

The profiles quantify the §VIII comparison table and back the
``variants_compare`` experiment; power-failure characteristics reuse
the same NAND bandwidth arithmetic as the §V-C drain model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import gb


@dataclass(frozen=True)
class VariantProfile:
    """Comparable characteristics of one NVDIMM variant."""

    name: str
    byte_addressable: bool
    persistent: bool
    needs_new_imc: bool              # non-deterministic controller?
    capacity_bytes: int              # usable capacity per module
    hit_latency_us: float            # best-case 4 KB access
    miss_latency_us: float | None    # worst-case 4 KB access (None = flat)
    backup_energy_window_s: float    # power hold-up needed on failure


#: NAND drain bandwidth available on power failure (two channels,
#: transfers only — the tRFC rule is suspended, §V-C).
DRAIN_MB_S = 800.0


def nvdimm_n(dram_bytes: int = gb(16)) -> VariantProfile:
    """NVDIMM-N: all of DRAM must be saved within the hold-up window."""
    backup_s = dram_bytes / (DRAIN_MB_S * 1e6)
    return VariantProfile(
        name="NVDIMM-N", byte_addressable=True, persistent=True,
        needs_new_imc=False, capacity_bytes=dram_bytes,
        hit_latency_us=1.5, miss_latency_us=None,
        backup_energy_window_s=backup_s)


def nvdimm_f(nand_bytes: int = gb(120)) -> VariantProfile:
    """NVDIMM-F: block device on the memory bus."""
    return VariantProfile(
        name="NVDIMM-F", byte_addressable=False, persistent=True,
        needs_new_imc=False, capacity_bytes=nand_bytes,
        hit_latency_us=30.0, miss_latency_us=None,
        backup_energy_window_s=0.0)


def nvdimm_p(nand_bytes: int = gb(120)) -> VariantProfile:
    """NVDIMM-P / DDR-T: the hybrid with a handshake protocol."""
    return VariantProfile(
        name="NVDIMM-P/DDR-T", byte_addressable=True, persistent=True,
        needs_new_imc=True, capacity_bytes=nand_bytes,
        hit_latency_us=1.8, miss_latency_us=10.0,
        backup_energy_window_s=0.0)


def nvdimm_c(nand_bytes: int = gb(120), cache_bytes: int = gb(16),
             hit_latency_us: float = 2.23,
             miss_latency_us: float = 69.8) -> VariantProfile:
    """This paper: hybrid capacity behind a DRAM cache, stock iMC.

    Only the *dirty cached* pages need draining on power failure — the
    metadata area bounds the energy window by the cache, not the
    device (§V-C).
    """
    backup_s = cache_bytes / (DRAIN_MB_S * 1e6)
    return VariantProfile(
        name="NVDIMM-C", byte_addressable=True, persistent=True,
        needs_new_imc=False, capacity_bytes=nand_bytes,
        hit_latency_us=hit_latency_us, miss_latency_us=miss_latency_us,
        backup_energy_window_s=backup_s)


def all_variants() -> list[VariantProfile]:
    return [nvdimm_n(), nvdimm_f(), nvdimm_p(), nvdimm_c()]


def compatible_and_byte_addressable_and_dense(
        min_capacity_bytes: int = gb(64)) -> list[VariantProfile]:
    """The selection the paper's intro performs: who offers SCM-class
    capacity, load/store access, and works on an unmodified platform?"""
    return [v for v in all_variants()
            if v.byte_addressable and not v.needs_new_imc
            and v.capacity_bytes >= min_capacity_bytes]
