"""The §VII-D1 hypothetical device: NVM replaced by a delay ``tD``.

"We now assume a hypothetical NVDIMM-C device that replaces the NVM
access with a programmable time delay (denoted as tD); thus, the FPGA
does nothing.  ...  we modified the nvdc driver to bypass the
communication with the FPGA."

The modified driver's miss path therefore costs only its own page
mapping management plus the media/window delay.  Fitting the paper's
four measured points (tD = 0 / 1.85 / 3.9 / 7.8 us -> 1503 / 914 / 681 /
451 MB/s) gives::

    miss_latency = 2.72 us + 0.83 * tD

— the fixed 2.72 us is the tD = 0 measurement itself (mapping management
without explicit coherence), and the 0.83 factor reflects that the three
per-window waits largely *overlap* the media delay once the refresh rate
is matched to tD (tREFI / tREFI2 / tREFI4).  Both constants live in
:mod:`repro.perf.calibration`; EXPERIMENTS.md records the residual error
of this fit per point.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.units import PAGE_4K


class HypotheticalSystem:
    """Uncached-path model of the tD device (single thread, 4 KB ops)."""

    def __init__(self, td_ps: int,
                 calibration: CalibrationConstants = DEFAULT_CALIBRATION
                 ) -> None:
        if td_ps < 0:
            raise ConfigError("tD must be non-negative")
        self.td_ps = td_ps
        self.calibration = calibration
        self.ops = 0

    @property
    def miss_latency_ps(self) -> int:
        """Latency of one uncached 4 KB access."""
        cal = self.calibration
        return round(cal.hypo_fixed_ps + cal.hypo_td_factor * self.td_ps)

    def op(self, offset: int, nbytes: int, is_write: bool,
           now_ps: int) -> int:
        """One uncached access (every access misses by construction —
        the experiment's FIO footprint far exceeds the cache)."""
        self.ops += 1
        pages = -(-nbytes // PAGE_4K)
        return now_ps + pages * self.miss_latency_ps

    def uncached_bandwidth_mb_s(self, nbytes: int = PAGE_4K) -> float:
        """Predicted single-thread uncached bandwidth."""
        return (nbytes / 1e6) / (self.miss_latency_ps / 1e12)
