"""Device-level composition: whole systems ready for workloads.

* :mod:`repro.device.nvdimmc` — the full NVDIMM-C system (DRAM cache +
  NVMC + Z-NAND + nvdc driver) and the pmem baseline system, both
  exposing the common :class:`~repro.device.nvdimmc.DaxSystem` surface
  the workload runners drive.
* :mod:`repro.device.hypothetical` — the §VII-D1 programmable-delay
  device (NVM replaced by tD).
* :mod:`repro.device.power` — PMIC / battery model and the §V-C
  power-failure drain with its persistence-domain race.
"""

from repro.device.hypothetical import HypotheticalSystem
from repro.device.nvdimmc import DaxSystem, NVDIMMCSystem, PmemSystem
from repro.device.power import PowerFailureModel

__all__ = [
    "DaxSystem",
    "NVDIMMCSystem",
    "PmemSystem",
    "HypotheticalSystem",
    "PowerFailureModel",
]
