"""Power failure: the battery-backed drain and the §V-C domain race.

On power loss "the firmware running on the FPGA reads the DRAM-to-NAND
mappings stored in the 16MB metadata area ... while ignoring the
tRFC-based serialization rule.  Therefore, the valid physical pages
inside the DRAM cache can be stored into the persistent Z-NAND media."

The catch (§V-C): the platform's own ADR flush of the write pending
queue runs *concurrently*, so stores still sitting in the WPQ when the
device snapshots a page may be lost — "the precise persistence domain
with our device will be scaled down to the DRAM cache."  The model
exposes that race so the recovery experiment can demonstrate both the
safe case (data flushed to DRAM before the failure) and the lost-WPQ
case the paper warns about.

The drain is *traced*: it announces itself with a ``power.drain``
record (``active=True/False``) and emits one ``ddr.cmd`` record per
page it moves, under the master name ``nvmc-drain``.  Those transfers
run outside any extended-tRFC window — exactly the rule violation the
battery makes legal — so the :class:`~repro.check.sanitizers.
BusRaceSanitizer` exempts window-escape checking between the drain
markers, and a missing marker (a device driving outside a window with
*no* declared power loss) is still flagged.

Recovery replays the metadata journal: each drained page's CRC is
checked against what Z-NAND actually holds, so a drain cut short by a
dying battery reports its losses honestly instead of pretending the
snapshot completed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.ddr.imc import WritePendingQueue
from repro.kernel.nvdc import NvdcDriver
from repro.units import PAGE_4K


@dataclass
class DrainReport:
    """Outcome of one power-failure drain."""

    pages_drained: int = 0
    wpq_entries_lost: int = 0
    wpq_entries_raced_in: int = 0
    drained_pages: list[int] = field(default_factory=list)
    #: True when the drain was cut short (battery exhausted / second
    #: power event): some mapped pages never reached Z-NAND.
    interrupted: bool = False


@dataclass
class JournalEntry:
    """One slot mapping in the 16 MB metadata area (Fig. 5)."""

    slot: int
    page: int
    crc: int = 0
    drained: bool = False


class MetadataJournal:
    """The drain-relevant view of the 16 MB metadata area.

    At power-fail time the firmware snapshots the slot-to-page mappings
    here, then marks each entry as it lands in Z-NAND (with a CRC of
    the bytes it programmed).  Recovery replays the journal against the
    media and reports what survived.
    """

    def __init__(self) -> None:
        self.entries: dict[int, JournalEntry] = {}

    def snapshot(self, slot_to_page: dict[int, int]) -> None:
        """Record the mappings the drain must persist."""
        self.entries = {slot: JournalEntry(slot=slot, page=page)
                        for slot, page in sorted(slot_to_page.items())}

    def mark_drained(self, slot: int, data: bytes) -> None:
        """Mark a slot's page as programmed, with its content CRC."""
        entry = self.entries[slot]
        entry.crc = zlib.crc32(data)
        entry.drained = True

    @property
    def pending(self) -> int:
        """Entries snapshotted but not yet drained."""
        return sum(1 for e in self.entries.values() if not e.drained)


@dataclass
class RecoveryReport:
    """Outcome of the post-power-loss replay."""

    pages_recovered: int = 0
    pages_lost: int = 0
    lost_pages: list[int] = field(default_factory=list)
    crc_mismatches: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.pages_lost == 0 and not self.crc_mismatches


class PowerFailureModel:
    """Orchestrates the §V-C power-loss sequence on a built system."""

    def __init__(self, driver: NvdcDriver,
                 wpq: WritePendingQueue | None = None) -> None:
        self.driver = driver
        self.wpq = wpq if wpq is not None else WritePendingQueue()
        self.journal = MetadataJournal()
        #: Duck-typed :class:`repro.faults.clock.FaultClock`; consulted
        #: per drained page (site ``"power.drain"``) so campaigns can
        #: cut the battery mid-drain.
        self.fault_clock = None

    def power_fail(self, flush_wpq_first: bool = False,
                   now_ps: int = 0) -> DrainReport:
        """Simulate power loss and the battery-backed drain.

        ``flush_wpq_first=True`` models the lucky interleaving where ADR
        completes before the device snapshots the affected pages;
        ``False`` models the §V-C race where WPQ contents never reach
        the DRAM cache and are lost.

        ``now_ps`` anchors the drain's trace records at the failure
        instant.  The drain is idempotent: a second call re-walks the
        same journal and re-programs the same bytes.
        """
        driver = self.driver
        tracer = driver.tracer
        report = DrainReport()
        if tracer.enabled:
            tracer.emit(now_ps, "power.drain", "battery drain begins",
                        owner=driver.trace_owner, active=True,
                        mapped=len(driver.slot_to_page))
        if flush_wpq_first:
            for addr, data in self.wpq.drain():
                driver.dram.poke(addr, data)
                report.wpq_entries_raced_in += 1
        else:
            report.wpq_entries_lost = len(self.wpq)
            self.wpq.entries.clear()

        # The firmware walks the metadata-area mappings and programs
        # every *valid* cached page to Z-NAND, tRFC rule suspended.
        # The mapping of a victim whose writeback was in flight at the
        # cut is already gone from ``slot_to_page``; the driver journals
        # it in ``inflight_writeback`` until the ack lands, and the
        # metadata area carries that one extra entry so the drain cannot
        # lose a page to an interrupted writeback.
        mappings = dict(driver.slot_to_page)
        inflight = getattr(driver, "inflight_writeback", None)
        if inflight is not None and inflight[0] not in mappings:
            mappings[inflight[0]] = inflight[1]
        self.journal.snapshot(mappings)
        transfer_ps = driver.nvmc.dma.transfer_time_ps(PAGE_4K)
        t = now_ps
        try:
            for slot, entry in self.journal.entries.items():
                if self.fault_clock is not None:
                    self.fault_clock.check(t, "power.drain")
                paddr = driver.region.slot_paddr(slot)
                data = driver.dram.peek(paddr, PAGE_4K)
                driver.nvmc.nand.preload(entry.page, data)
                self.journal.mark_drained(slot, data)
                if tracer.enabled:
                    # The transfer the battery legitimises: a device
                    # master on the bus outside any refresh window.
                    tracer.emit(t, "ddr.cmd",
                                f"drain slot {slot} -> page {entry.page}",
                                owner=driver.trace_owner,
                                master="nvmc-drain", kind="RD",
                                ca_end=t + transfer_ps,
                                dq_start=t, dq_end=t + transfer_ps)
                t += transfer_ps
                report.pages_drained += 1
                report.drained_pages.append(entry.page)
        except Exception:
            report.interrupted = True
            raise
        finally:
            if tracer.enabled:
                tracer.emit(t, "power.drain",
                            "battery drain ends"
                            if not report.interrupted
                            else "battery drain interrupted",
                            owner=driver.trace_owner, active=False,
                            drained=report.pages_drained,
                            pending=self.journal.pending)
        return report

    def recover(self) -> "RecoveredDevice":
        """Boot-time view: DRAM contents are gone; NAND remains."""
        return RecoveredDevice(self.driver, self.journal)


class RecoveredDevice:
    """Post-reboot accessor: reads come from the persistent media."""

    def __init__(self, driver: NvdcDriver,
                 journal: MetadataJournal | None = None) -> None:
        self._nand = driver.nvmc.nand
        self.journal = journal

    def read_page(self, page: int) -> bytes:
        """Read a device page from Z-NAND (ignoring the lost DRAM)."""
        data, _ = self._nand.read_page(page, 0)
        if data is None:
            return bytes(PAGE_4K)
        return data

    def replay(self) -> RecoveryReport:
        """Replay the metadata journal against the media.

        Every journal entry is audited: an undrained entry is a lost
        page (the battery died first); a drained entry whose media CRC
        no longer matches what the drain programmed is corruption.  The
        report is honest by construction — it never counts a page as
        recovered without re-reading it from Z-NAND.
        """
        report = RecoveryReport()
        if self.journal is None:
            return report
        for entry in self.journal.entries.values():
            if not entry.drained:
                report.pages_lost += 1
                report.lost_pages.append(entry.page)
                continue
            data = self.read_page(entry.page)
            if zlib.crc32(data) != entry.crc:
                report.crc_mismatches.append(entry.page)
            else:
                report.pages_recovered += 1
        return report
