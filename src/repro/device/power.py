"""Power failure: the battery-backed drain and the §V-C domain race.

On power loss "the firmware running on the FPGA reads the DRAM-to-NAND
mappings stored in the 16MB metadata area ... while ignoring the
tRFC-based serialization rule.  Therefore, the valid physical pages
inside the DRAM cache can be stored into the persistent Z-NAND media."

The catch (§V-C): the platform's own ADR flush of the write pending
queue runs *concurrently*, so stores still sitting in the WPQ when the
device snapshots a page may be lost — "the precise persistence domain
with our device will be scaled down to the DRAM cache."  The model
exposes that race so the recovery experiment can demonstrate both the
safe case (data flushed to DRAM before the failure) and the lost-WPQ
case the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddr.imc import WritePendingQueue
from repro.kernel.nvdc import NvdcDriver
from repro.units import PAGE_4K


@dataclass
class DrainReport:
    """Outcome of one power-failure drain."""

    pages_drained: int = 0
    wpq_entries_lost: int = 0
    wpq_entries_raced_in: int = 0
    drained_pages: list[int] = field(default_factory=list)


class PowerFailureModel:
    """Orchestrates the §V-C power-loss sequence on a built system."""

    def __init__(self, driver: NvdcDriver,
                 wpq: WritePendingQueue | None = None) -> None:
        self.driver = driver
        self.wpq = wpq if wpq is not None else WritePendingQueue()

    def power_fail(self, flush_wpq_first: bool = False) -> DrainReport:
        """Simulate power loss and the battery-backed drain.

        ``flush_wpq_first=True`` models the lucky interleaving where ADR
        completes before the device snapshots the affected pages;
        ``False`` models the §V-C race where WPQ contents never reach
        the DRAM cache and are lost.
        """
        report = DrainReport()
        if flush_wpq_first:
            for addr, data in self.wpq.drain():
                self.driver.dram.poke(addr, data)
                report.wpq_entries_raced_in += 1
        else:
            report.wpq_entries_lost = len(self.wpq)
            self.wpq.entries.clear()

        # The firmware walks the metadata-area mappings and programs
        # every *valid* cached page to Z-NAND, tRFC rule suspended.
        for slot, page in sorted(self.driver.slot_to_page.items()):
            paddr = self.driver.region.slot_paddr(slot)
            data = self.driver.dram.peek(paddr, PAGE_4K)
            self.driver.nvmc.nand.preload(page, data)
            report.pages_drained += 1
            report.drained_pages.append(page)
        return report

    def recover(self) -> "RecoveredDevice":
        """Boot-time view: DRAM contents are gone; NAND remains."""
        return RecoveredDevice(self.driver)


class RecoveredDevice:
    """Post-reboot accessor: reads come from the persistent media."""

    def __init__(self, driver: NvdcDriver) -> None:
        self._nand = driver.nvmc.nand

    def read_page(self, page: int) -> bytes:
        """Read a device page from Z-NAND (ignoring the lost DRAM)."""
        data, _ = self._nand.read_page(page, 0)
        if data is None:
            return bytes(PAGE_4K)
        return data
