"""Arbitration schemes for a bus shared with an in-DIMM controller.

§VIII surveys the alternatives to the paper's tRFC scheme:

* **tRFC windows** (this paper): the device owns the bus only inside
  the extended refresh cycle.  Deterministic for the host, full DRAM
  capacity, device ceiling = window bytes per tREFI — the paper's §V-A
  arithmetic (500.8 MB/s at stock tREFI, double at tREFI2).
* **Dummy-access** (Netlist patent [75]): a dual-rank DIMM where the
  driver issues dummy writes to an unused rank while the DIMM
  controller uses those bus slots on the data rank.  Device bandwidth
  equals whatever dummy-write rate the driver sustains — flexible, but
  it consumes host bandwidth 1:1 and *halves usable capacity*.
* **Priority-preemption** (LPDDR3 mobile storage [73]): the storage
  controller uses idle bus time and is preempted by any CPU access.
  Free when the host is idle, but offers no progress guarantee under
  load (the paper's reason for rejecting it: "the accesses from the
  storage controller can be preempted anytime").

The models are intentionally first-order — enough to reproduce the
qualitative trade-offs the related-work section argues from, with the
tRFC numbers tied to the same :class:`~repro.ddr.imc.RefreshTimeline`
the rest of the simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import DDR4Spec, NVDIMMC_1600
from repro.units import PAGE_4K


@dataclass(frozen=True)
class SchemeProfile:
    """Comparable characteristics of one arbitration scheme."""

    name: str
    device_ceiling_mb_s: float        # sustained device-side bandwidth
    host_bandwidth_share: float       # fraction of channel host keeps
    capacity_efficiency: float        # usable / installed DRAM
    deterministic_for_host: bool      # host timing untouched under load
    guaranteed_device_progress: bool  # device can't be starved


class TRFCScheme:
    """The paper's mechanism, §III-B/§V-A."""

    def __init__(self, spec: DDR4Spec = NVDIMMC_1600,
                 window_bytes: int = PAGE_4K) -> None:
        self.spec = spec
        self.timeline = RefreshTimeline(spec)
        self.window_bytes = window_bytes

    def device_ceiling_mb_s(self) -> float:
        """§V-A: up to ``window_bytes`` per tREFI.

        500.8 MB/s at the stock 7.8 us tREFI with 4 KB windows; doubles
        at tREFI2 — the exact figures the paper quotes.  (The paper's
        arithmetic is binary-mega: 4096 B / 7.8 us = 500.8 * 2^20 B/s,
        so this method reports MiB/s to match.)
        """
        per_second = 1e12 / self.timeline.trefi_ps
        return self.window_bytes * per_second / 2**20

    def host_share(self) -> float:
        """Host keeps everything outside the blackouts."""
        return 1.0 - self.timeline.blocked_fraction

    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="tRFC windows (NVDIMM-C)",
            device_ceiling_mb_s=self.device_ceiling_mb_s(),
            host_bandwidth_share=self.host_share(),
            capacity_efficiency=1.0,
            deterministic_for_host=True,
            guaranteed_device_progress=True)


class DummyAccessScheme:
    """The Netlist dual-rank dummy-write mechanism [75]."""

    def __init__(self, dummy_write_mb_s: float,
                 channel_mb_s: float = 12_800.0) -> None:
        if dummy_write_mb_s < 0 or dummy_write_mb_s > channel_mb_s:
            raise ConfigError("dummy-write rate must fit the channel")
        self.dummy_write_mb_s = dummy_write_mb_s
        self.channel_mb_s = channel_mb_s

    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="dummy-access (Netlist)",
            device_ceiling_mb_s=self.dummy_write_mb_s,
            host_bandwidth_share=1.0 - (self.dummy_write_mb_s
                                        / self.channel_mb_s),
            # One rank carries data, the other exists to be written
            # with garbage: "the actual DRAM capacity would be half".
            capacity_efficiency=0.5,
            deterministic_for_host=True,
            guaranteed_device_progress=False)   # needs driver cooperation


class PriorityPreemptScheme:
    """The LPDDR3 mobile-storage arbitration [73]."""

    def __init__(self, host_utilization: float,
                 channel_mb_s: float = 12_800.0) -> None:
        if not 0.0 <= host_utilization <= 1.0:
            raise ConfigError("utilization must be in [0, 1]")
        self.host_utilization = host_utilization
        self.channel_mb_s = channel_mb_s

    def profile(self) -> SchemeProfile:
        idle = 1.0 - self.host_utilization
        return SchemeProfile(
            name="priority-preempt (LPDDR3 storage)",
            device_ceiling_mb_s=idle * self.channel_mb_s,
            host_bandwidth_share=1.0,        # CPU always wins
            capacity_efficiency=1.0,
            deterministic_for_host=True,
            guaranteed_device_progress=False)   # starves under load


def compare(host_utilization: float = 0.9,
            dummy_write_mb_s: float = 500.0) -> list[SchemeProfile]:
    """The three schemes at comparable operating points."""
    return [
        TRFCScheme().profile(),
        DummyAccessScheme(dummy_write_mb_s).profile(),
        PriorityPreemptScheme(host_utilization).profile(),
    ]
