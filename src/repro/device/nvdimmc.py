"""Whole-system composition: NVDIMM-C and the pmem baseline.

Both systems expose one surface the workload runners drive:

    end_ps = system.op(offset, nbytes, is_write, now_ps)

which models a libpmem-style DAX access: resolve 4 KB pages (faulting
through the nvdc miss path when uncached), spend the calibrated host
software time, and pass the memory phase through the shared channel.

**Scaling.**  The paper's hardware is 16 GB of cache over a 120 GB
device; holding 3.9 M slot objects per run is wasteful in Python, so
experiments build scaled-down systems (default 1/256: 64 MB cache /
480 MB device).  Every *ratio* that shapes the results — cache:footprint,
slots:pages — is preserved, and no timing constant depends on absolute
capacity, so reported bandwidths are directly comparable with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cache import CPUCache
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import DDR4Spec, NVDIMMC_1600, DDR4_1600
from repro.health.monitor import HealthMonitor, HealthPolicy
from repro.health.scrub import PatrolScrubber, ScrubConfig
from repro.kernel.memmap import ReservedRegion
from repro.kernel.nvdc import NvdcDriver
from repro.sim.snapshot import SnapshotMixin
from repro.kernel.pmem import PmemDriver
from repro.nand.controller import NANDController
from repro.nand.spec import ZNANDSpec
from repro.nvmc.fsm import FirmwareModel
from repro.nvmc.nvmc import NVMCModel
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.perf.contention import MemoryChannel
from repro.perf.model import HostCostModel
from repro.sim.trace import Tracer
from repro.units import PAGE_4K, gb, kb, mb


@dataclass
class DaxSystem(SnapshotMixin):
    """The surface workload runners see.

    Concrete systems populate ``timeline``/``cost_model``/``channel``
    and implement ``resolve_page``; ``op`` is shared.
    """

    timeline: RefreshTimeline
    cost_model: HostCostModel
    channel: MemoryChannel
    capacity_bytes: int

    def resolve_page(self, page: int, now_ps: int,
                     is_write: bool) -> int:
        """Ensure the 4 KB device page is byte-addressable; returns the
        time the mapping is usable (now_ps when already mapped)."""
        raise NotImplementedError

    @property
    def now_floor_ps(self) -> int:
        """Earliest sensible start time for new work on this system
        (runners reusing a system must not start behind its shared
        cursors, or queueing delay from past runs pollutes results)."""
        return self.channel.busy_until_ps

    def op(self, offset: int, nbytes: int, is_write: bool,
           now_ps: int) -> int:
        """One DAX access; returns its completion time."""
        t = now_ps
        first = offset // PAGE_4K
        last = (offset + nbytes - 1) // PAGE_4K
        for page in range(first, last + 1):
            t = self.resolve_page(page, t, is_write)
        cost = self.cost_model.cached_cost(nbytes, is_write)
        t += cost.fixed_ps + cost.sw_ps
        occupancy = self.cost_model.channel_service_ps(nbytes, is_write)
        return self.channel.serve_split(t, occupancy, cost.mem_ps)


class NVDIMMCSystem(DaxSystem):
    """The full proposed device: DRAM cache in front of Z-NAND."""

    def __init__(self, cache_bytes: int = mb(64),
                 device_bytes: int = mb(480),
                 spec: DDR4Spec = NVDIMMC_1600,
                 trefi_ps: int | None = None,
                 policy: str = "lrc",
                 firmware: FirmwareModel | None = None,
                 window_bytes: int = PAGE_4K,
                 cp_queue_depth: int = 1,
                 use_merged_commands: bool = False,
                 conservative_dirty: bool = True,
                 with_cpu_cache: bool = False,
                 nand_phy_mhz: int | None = None,
                 calibration: CalibrationConstants = DEFAULT_CALIBRATION,
                 seed: int = 7,
                 tracer: Tracer | None = None,
                 health_policy: HealthPolicy | None = None,
                 scrub_config: ScrubConfig | None = None) -> None:
        if trefi_ps is not None:
            spec = spec.with_trefi(trefi_ps)
        timeline = RefreshTimeline(spec)
        dram = DRAMDevice(spec, capacity_bytes=cache_bytes, name="dram-cache")
        region = ReservedRegion(base_paddr=0, size_bytes=cache_bytes)
        nand_spec = self._nand_spec_for(device_bytes, nand_phy_mhz)
        # One health monitor spans the module: driver, NVMC, NAND
        # controller and FTL all feed and read the same ladder.
        health = HealthMonitor(policy=health_policy, tracer=tracer)
        nand = NANDController(
            nand_spec, logical_capacity_bytes=device_bytes,
            channels=2, dies_total=8, seed=seed, health=health)
        nvmc = NVMCModel(timeline, nand, dram,
                         window_bytes=window_bytes,
                         firmware=firmware or FirmwareModel(),
                         cp_queue_depth=cp_queue_depth,
                         tracer=tracer, health=health)
        cpu_cache = CPUCache(_DramBackend(dram)) if with_cpu_cache else None
        driver = NvdcDriver(region, nvmc, dram, cpu_cache=cpu_cache,
                            policy=policy,
                            conservative_dirty=conservative_dirty,
                            use_merged_commands=use_merged_commands,
                            calibration=calibration)
        super().__init__(timeline=timeline,
                         cost_model=HostCostModel(timeline, "nvdc",
                                                  calibration),
                         channel=MemoryChannel("nvdc-channel"),
                         capacity_bytes=driver.capacity_bytes)
        self.spec = spec
        self.dram = dram
        self.region = region
        self.nand = nand
        self.nvmc = nvmc
        self.cpu_cache = cpu_cache
        self.driver = driver
        self.health = health
        self.scrubber = PatrolScrubber(nvmc, driver=driver, monitor=health,
                                       config=scrub_config)

    @staticmethod
    def _nand_spec_for(device_bytes: int,
                       phy_mhz: int | None) -> ZNANDSpec:
        """Scale the Z-NAND geometry to hold the (scaled) device with
        the paper's 120/128 over-provisioning ratio plus a fixed
        GC-reserve margin (negligible at paper scale, but needed so
        block-rounding at small scales cannot starve the FTL)."""
        gc_margin = 64 * 64 * kb(4)    # 64 blocks of 64 pages
        raw_bytes = device_bytes * 128 // 120 + gc_margin
        per_package = max(raw_bytes // 2, 64 * 2 * 4 * kb(4))
        spec = ZNANDSpec(name="Z-NAND-scaled", capacity_bytes=per_package,
                         pages_per_block=64, dies=4,
                         initial_bad_block_ppm=0)
        if phy_mhz is not None:
            spec = spec.with_phy_mhz(phy_mhz)
        return spec

    def resolve_page(self, page: int, now_ps: int, is_write: bool) -> int:
        slot = self.driver.lookup(page)
        if slot is None:
            _slot, end_ps = self.driver.fault(page, now_ps, is_write)
            return end_ps
        if is_write:
            self.driver.mark_write(page, now_ps)
        return now_ps

    @property
    def now_floor_ps(self) -> int:
        return max(self.channel.busy_until_ps, self.nvmc.ready_ps)

    # -- paper-scale convenience -------------------------------------------------------

    @classmethod
    def paper_scale(cls, scale: int = 256, **kwargs) -> "NVDIMMCSystem":
        """Table-I configuration shrunk by ``scale`` (ratios intact)."""
        return cls(cache_bytes=gb(16) // scale,
                   device_bytes=gb(120) // scale, **kwargs)

    # -- reboot (§V-C recovery) ---------------------------------------------------------

    def remount(self,
                health: HealthMonitor | None = None) -> "NVDIMMCSystem":
        """Boot-time remount after a power cycle.

        DRAM contents are gone; the Z-NAND (and its FTL mapping state,
        which lives on the persistent media) survives.  Returns a fresh
        system — empty cache, zeroed metadata, same NAND — exactly what
        the nvdc driver sees when the module is re-probed.

        ``health`` replaces the module's monitor for the new mount: a
        *warm* remount (the ladder survived, e.g. a driver reload)
        passes ``None`` and keeps the live monitor; a *cold* mount after
        a power cut passes a fresh monitor re-seeded from media
        evidence (see :func:`repro.recovery.recover_mount`) — the old
        one's volatile state died with the power.
        """
        monitor = health if health is not None else self.health
        fresh = object.__new__(NVDIMMCSystem)
        dram = DRAMDevice(self.spec, capacity_bytes=self.dram.capacity_bytes,
                          name="dram-cache")
        region = ReservedRegion(base_paddr=0,
                                size_bytes=self.region.size_bytes)
        nvmc = NVMCModel(self.timeline, self.nand, dram,
                         window_bytes=self.nvmc.dma.window_bytes,
                         firmware=self.nvmc.firmware,
                         cp_queue_depth=self.nvmc.cp.queue_depth,
                         tracer=self.nvmc.tracer,
                         health=monitor)
        cpu_cache = (CPUCache(_DramBackend(dram))
                     if self.cpu_cache is not None else None)
        driver = NvdcDriver(region, nvmc, dram, cpu_cache=cpu_cache,
                            policy=self.driver.policy.name,
                            conservative_dirty=self.driver.conservative_dirty,
                            use_merged_commands=self.driver.use_merged_commands,
                            calibration=self.driver.calibration)
        DaxSystem.__init__(fresh, timeline=self.timeline,
                           cost_model=self.cost_model,
                           channel=MemoryChannel("nvdc-channel"),
                           capacity_bytes=driver.capacity_bytes)
        fresh.spec = self.spec
        fresh.dram = dram
        fresh.region = region
        fresh.nand = self.nand
        fresh.nvmc = nvmc
        fresh.cpu_cache = cpu_cache
        fresh.driver = driver
        # On a warm remount health is a property of the *module* and
        # the ladder survives; a cold mount hands in its own monitor.
        fresh.health = monitor
        fresh.nand.health = monitor
        fresh.nand.ftl.health = monitor
        fresh.scrubber = PatrolScrubber(nvmc, driver=driver,
                                        monitor=monitor,
                                        config=self.scrubber.config)
        return fresh


class PmemSystem(DaxSystem):
    """The /dev/pmem0 baseline: emulated NVDIMM on plain DRAM."""

    def __init__(self, device_bytes: int = mb(480),
                 spec: DDR4Spec = DDR4_1600,
                 trefi_ps: int | None = None,
                 calibration: CalibrationConstants = DEFAULT_CALIBRATION
                 ) -> None:
        if trefi_ps is not None:
            spec = spec.with_trefi(trefi_ps)
        timeline = RefreshTimeline(spec)
        dram = DRAMDevice(spec, capacity_bytes=device_bytes, name="pmem-dram")
        driver = PmemDriver(dram, base_paddr=0, capacity_bytes=device_bytes)
        super().__init__(timeline=timeline,
                         cost_model=HostCostModel(timeline, "pmem",
                                                  calibration),
                         channel=MemoryChannel("pmem-channel"),
                         capacity_bytes=device_bytes)
        self.spec = spec
        self.dram = dram
        self.driver = driver

    def resolve_page(self, page: int, now_ps: int, is_write: bool) -> int:
        # Every page of a ramdisk-like device is always mapped.
        return now_ps


class _DramBackend:
    """Adapter: DRAMDevice peek/poke as a CPU-cache memory backend."""

    def __init__(self, dram: DRAMDevice) -> None:
        self._dram = dram

    def mem_read(self, addr: int, nbytes: int) -> bytes:
        return self._dram.peek(addr, nbytes)

    def mem_write(self, addr: int, data: bytes) -> None:
        self._dram.poke(addr, data)
