"""Exception hierarchy for the NVDIMM-C simulator.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch simulator problems without masking programming errors.

Stable error codes
    Each class carries a ``code`` (``"REPRO-Exyz"``) that is part of the
    public contract: fault-campaign reports, logs, and tests key on the
    code, never on the message text, so messages can be improved without
    breaking consumers.  Codes are allocated in decades per subsystem
    (E01x simulation, E02x protocol, E03x media, E04x FTL, E05x device,
    E06x kernel, E07x configuration, E08x fault injection, E09x fleet)
    and are never reused once published.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""

    #: Stable machine-readable identity of the error class.
    code: str = "REPRO-E000"


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""

    code = "REPRO-E010"


class ProtocolError(ReproError):
    """A DDR4/NAND protocol rule was violated (illegal command sequence)."""

    code = "REPRO-E020"


class BusCollisionError(ProtocolError):
    """Two bus masters drove the shared CA/DQ bus in overlapping slots.

    This is the failure mode the paper's tRFC serialisation mechanism
    exists to prevent (Fig. 2a cases C1/C2).  The simulator raises it when
    collision detection is enabled and the rule is broken.
    """

    code = "REPRO-E021"

    def __init__(self, message: str, time_ps: int = -1,
                 masters: tuple[str, str] | None = None) -> None:
        super().__init__(message)
        self.time_ps = time_ps
        self.masters = masters


class TimingViolationError(ProtocolError):
    """A command was issued before a JEDEC timing window elapsed."""

    code = "REPRO-E022"


class MediaError(ReproError):
    """A NAND/NVM media operation failed (bad block, uncorrectable ECC)."""

    code = "REPRO-E030"


class UncorrectableError(MediaError):
    """ECC decode failed: more raw bit errors than the code can correct."""

    code = "REPRO-E031"


class DegradedModeError(MediaError):
    """The device entered read-only degraded mode after repeated media
    failures; writes are refused until the module is replaced.

    ``reason`` is the machine-readable cause (``"bad-block-budget"``,
    ``"remap-exhausted"``, ``"space-exhausted"``, ...) that health
    reports and tests key on; the message text stays human-facing.
    """

    code = "REPRO-E032"

    def __init__(self, message: str, reason: str = "degraded") -> None:
        super().__init__(message)
        self.reason = reason


class FailStopError(DegradedModeError):
    """The device can no longer vouch for its data (an unrecoverable
    read while already degraded): every host operation is refused."""

    code = "REPRO-E033"

    def __init__(self, message: str, reason: str = "fail-stop") -> None:
        super().__init__(message, reason=reason)


class FTLError(ReproError):
    """The flash translation layer hit an invariant violation."""

    code = "REPRO-E040"


class DeviceError(ReproError):
    """NVDIMM-C device-level failure (CP protocol, power, configuration)."""

    code = "REPRO-E050"


class CPProtocolError(DeviceError):
    """Malformed or out-of-order communication-protocol exchange."""

    code = "REPRO-E051"


class CPTimeoutError(CPProtocolError):
    """The driver gave up on a CP exchange: no matching acknowledgement
    (or no clean status) arrived within the retry/backoff budget."""

    code = "REPRO-E052"

    def __init__(self, message: str, attempts: int = 0,
                 last_status: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_status = last_status


class KernelError(ReproError):
    """Software-stack failure (driver, filesystem, memory reservation)."""

    code = "REPRO-E060"


class OutOfSlotsError(KernelError):
    """The DRAM cache has no free slot and no evictable victim."""

    code = "REPRO-E061"


class ConfigError(ReproError, ValueError):
    """Inconsistent or unsupported system configuration.

    Also a :class:`ValueError` so pre-taxonomy callers that validated
    constructor arguments with ``except ValueError`` keep working.
    """

    code = "REPRO-E070"


class FaultInjectionError(ReproError):
    """A fault-injection campaign was mis-specified (unknown injector,
    bad schedule) — a harness bug, never an injected fault itself."""

    code = "REPRO-E080"


class FleetError(ReproError):
    """A fleet-level serving failure (stuck shard worker, unroutable
    failover) — the front end cannot merge a complete, deterministic
    run.  Distinct from per-module errors: the module may be fine while
    the fleet harness around it is not."""

    code = "REPRO-E090"


class PowerLossInterrupt(ReproError):
    """Simulated power loss fired at a scheduled instant.

    Control flow, not a bug: a :class:`~repro.faults.clock.FaultClock`
    raises it from an injection hook site (mid-DMA, mid-writeback,
    mid-GC, engine dispatch) to abandon in-flight work exactly the way
    a real power cut would.  Campaign code catches it and runs the
    battery-backed drain (:mod:`repro.device.power`).
    """

    code = "REPRO-E081"

    def __init__(self, message: str, time_ps: int = -1,
                 site: str = "?") -> None:
        super().__init__(message)
        self.time_ps = time_ps
        self.site = site
