"""Exception hierarchy for the NVDIMM-C simulator.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch simulator problems without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ProtocolError(ReproError):
    """A DDR4/NAND protocol rule was violated (illegal command sequence)."""


class BusCollisionError(ProtocolError):
    """Two bus masters drove the shared CA/DQ bus in overlapping slots.

    This is the failure mode the paper's tRFC serialisation mechanism
    exists to prevent (Fig. 2a cases C1/C2).  The simulator raises it when
    collision detection is enabled and the rule is broken.
    """

    def __init__(self, message: str, time_ps: int = -1,
                 masters: tuple[str, str] | None = None) -> None:
        super().__init__(message)
        self.time_ps = time_ps
        self.masters = masters


class TimingViolationError(ProtocolError):
    """A command was issued before a JEDEC timing window elapsed."""


class MediaError(ReproError):
    """A NAND/NVM media operation failed (bad block, uncorrectable ECC)."""


class UncorrectableError(MediaError):
    """ECC decode failed: more raw bit errors than the code can correct."""


class FTLError(ReproError):
    """The flash translation layer hit an invariant violation."""


class DeviceError(ReproError):
    """NVDIMM-C device-level failure (CP protocol, power, configuration)."""


class CPProtocolError(DeviceError):
    """Malformed or out-of-order communication-protocol exchange."""


class KernelError(ReproError):
    """Software-stack failure (driver, filesystem, memory reservation)."""


class OutOfSlotsError(KernelError):
    """The DRAM cache has no free slot and no evictable victim."""


class ConfigError(ReproError):
    """Inconsistent or unsupported system configuration."""
