"""Table-I system configurations as first-class objects.

Bundles the knobs scattered across the subsystems (DDR4 spec, cache and
device capacity, NAND PHY, firmware lag, eviction policy, CP queue
depth) into one named configuration that can be scaled, varied for
ablations, and instantiated into a runnable system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ddr.spec import DDR4Spec, NVDIMMC_1600
from repro.errors import ConfigError
from repro.nvmc.fsm import FirmwareModel
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.units import PAGE_4K, gb


@dataclass(frozen=True)
class SystemConfig:
    """One complete NVDIMM-C configuration (paper scale by default)."""

    name: str = "table1"
    spec: DDR4Spec = NVDIMMC_1600
    cache_bytes: int = gb(16)
    device_bytes: int = gb(120)
    policy: str = "lrc"
    cp_queue_depth: int = 1
    window_bytes: int = PAGE_4K
    firmware_step_ps: int = field(
        default_factory=lambda: FirmwareModel().step_ps)
    nand_phy_mhz: int | None = None
    conservative_dirty: bool = True
    use_merged_commands: bool = False
    calibration: CalibrationConstants = DEFAULT_CALIBRATION

    def validate(self) -> None:
        if self.cache_bytes <= 0 or self.device_bytes <= 0:
            raise ConfigError("capacities must be positive")
        if self.cache_bytes >= self.device_bytes:
            raise ConfigError(
                "the DRAM cache must be smaller than the device "
                "(otherwise NVDIMM-C degenerates to NVDIMM-N)")
        self.spec.validate()

    def scaled(self, factor: int) -> "SystemConfig":
        """Shrink capacities by ``factor``; every ratio and timing
        parameter is preserved (see repro.device.nvdimmc)."""
        if factor < 1:
            raise ConfigError(f"scale factor must be >= 1: {factor}")
        return replace(self, name=f"{self.name}/{factor}",
                       cache_bytes=self.cache_bytes // factor,
                       device_bytes=self.device_bytes // factor)

    def build(self, with_cpu_cache: bool = False):
        """Instantiate a runnable :class:`~repro.device.nvdimmc.
        NVDIMMCSystem` from this configuration."""
        from repro.device.nvdimmc import NVDIMMCSystem
        self.validate()
        return NVDIMMCSystem(
            cache_bytes=self.cache_bytes,
            device_bytes=self.device_bytes,
            spec=self.spec,
            policy=self.policy,
            firmware=FirmwareModel(step_ps=self.firmware_step_ps),
            window_bytes=self.window_bytes,
            cp_queue_depth=self.cp_queue_depth,
            use_merged_commands=self.use_merged_commands,
            conservative_dirty=self.conservative_dirty,
            with_cpu_cache=with_cpu_cache,
            nand_phy_mhz=self.nand_phy_mhz,
            calibration=self.calibration)


#: The paper's Table-I device, full scale.
PAPER_CONFIG = SystemConfig()

#: The standard experiment scale (1/256: 64 MB cache / 480 MB device).
EXPERIMENT_CONFIG = PAPER_CONFIG.scaled(256)

#: The §VII-C ASIC roadmap configuration.
ASIC_CONFIG = replace(EXPERIMENT_CONFIG, name="asic",
                      firmware_step_ps=0, nand_phy_mhz=500,
                      use_merged_commands=True)
