"""Time and size units for the NVDIMM-C simulator.

The whole simulator keeps time as an integer number of **picoseconds**.
DDR4 clock periods are fractions of a nanosecond (e.g. 1.25 ns at
DDR4-1600, 0.833 ns at DDR4-2400), so picoseconds keep every timing
parameter exact and avoid floating-point drift in the event queue.

Sizes are plain integers counted in bytes.
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------

PS = 1
NS = 1_000 * PS
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS


def ns(value: float) -> int:
    """Convert a value in nanoseconds to integer picoseconds."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert a value in microseconds to integer picoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert a value in milliseconds to integer picoseconds."""
    return round(value * MS)


def sec(value: float) -> int:
    """Convert a value in seconds to integer picoseconds."""
    return round(value * SEC)


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return picoseconds / NS


def to_us(picoseconds: int) -> float:
    """Convert integer picoseconds to float microseconds."""
    return picoseconds / US


def to_sec(picoseconds: int) -> float:
    """Convert integer picoseconds to float seconds."""
    return picoseconds / SEC


def format_time(picoseconds: int) -> str:
    """Render a simulation time with an auto-selected unit.

    >>> format_time(1_250_000)
    '1.250 us'
    """
    value = abs(picoseconds)
    if value >= SEC:
        return f"{picoseconds / SEC:.3f} s"
    if value >= MS:
        return f"{picoseconds / MS:.3f} ms"
    if value >= US:
        return f"{picoseconds / US:.3f} us"
    if value >= NS:
        return f"{picoseconds / NS:.3f} ns"
    return f"{picoseconds} ps"


# --- sizes ---------------------------------------------------------------

B = 1
KB = 1024 * B
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

CACHELINE = 64 * B
PAGE_4K = 4 * KB


def kb(value: float) -> int:
    """Convert a value in KiB to integer bytes."""
    return round(value * KB)


def mb(value: float) -> int:
    """Convert a value in MiB to integer bytes."""
    return round(value * MB)


def gb(value: float) -> int:
    """Convert a value in GiB to integer bytes."""
    return round(value * GB)


def format_size(num_bytes: int) -> str:
    """Render a byte count with an auto-selected binary unit.

    >>> format_size(4096)
    '4.0 KiB'
    """
    value = abs(num_bytes)
    if value >= TB:
        return f"{num_bytes / TB:.1f} TiB"
    if value >= GB:
        return f"{num_bytes / GB:.1f} GiB"
    if value >= MB:
        return f"{num_bytes / MB:.1f} MiB"
    if value >= KB:
        return f"{num_bytes / KB:.1f} KiB"
    return f"{num_bytes} B"


# --- rates ---------------------------------------------------------------


def bandwidth_mb_s(num_bytes: int, picoseconds: int) -> float:
    """Bandwidth in MB/s (decimal MB, as the paper reports) over a span."""
    if picoseconds <= 0:
        return 0.0
    return (num_bytes / 1e6) / (picoseconds / SEC)


def iops(num_ops: int, picoseconds: int) -> float:
    """Operations per second over a span of simulated time."""
    if picoseconds <= 0:
        return 0.0
    return num_ops / (picoseconds / SEC)
