#!/usr/bin/env python3
"""From PoC to product: the §VII-C roadmap, measured step by step.

The paper closes its performance discussion with five fixes for the
Uncached path.  Each is a switch in this codebase, so the roadmap can
be *walked*: start from the PoC configuration (57-66 MB/s uncached) and
turn on, one by one, the ASIC FSM, the full-speed NAND PHY, the merged
writeback+cachefill command, and finally the multi-command CP area with
its pipelined firmware — ending at the two-windows-per-miss ceiling.

Run:  python examples/roadmap_ablation.py
"""

from repro.analysis.tables import render_table
from repro.experiments.common import asic_firmware, build_uncached_nvdc
from repro.nvmc.pipeline import queue_depth_sweep
from repro.units import PAGE_4K, kb, us


def uncached_bandwidth(nops: int = 80, **kwargs) -> float:
    system, first_page, t = build_uncached_nvdc(extra_pages=nops + 8,
                                                **kwargs)
    start = t
    for i in range(nops):
        t = system.op((first_page + i) * PAGE_4K, kb(4), False, t)
    return nops * kb(4) / 1e6 / ((t - start) / 1e12)


def main() -> None:
    print("=== §VII-C: the Uncached-performance roadmap ===\n")
    steps = [
        ("PoC (measured in the paper: 57.3)", {}),
        ("(1) ASIC FSM — no firmware lag",
         dict(firmware=asic_firmware())),
        ("(1+5) + Z-NAND PHY at 500 MHz",
         dict(firmware=asic_firmware(), nand_phy_mhz=500)),
        ("(1+4+5) + merged WB/fill command",
         dict(firmware=asic_firmware(), nand_phy_mhz=500,
              use_merged_commands=True)),
    ]
    rows = []
    base = None
    for label, kwargs in steps:
        bw = uncached_bandwidth(**kwargs)
        base = base or bw
        rows.append([label, f"{bw:.1f}", f"{bw / base:.2f}x"])
    print(render_table(["configuration", "uncached MB/s", "vs PoC"], rows))

    print("\n(2) multi-command CP area (pipelined firmware, ideal FSM):")
    rows = []
    for depth, bw in queue_depth_sweep(depths=(1, 2, 4, 8)):
        rows.append([f"CP queue depth {depth}", f"{bw:.1f}"])
    print(render_table(["configuration", "uncached MB/s"], rows))
    ceiling = PAGE_4K / 1e6 / (2 * 7.8e-6)
    print(f"\ntwo-data-windows-per-miss ceiling: {ceiling:.1f} MB/s — "
          "reached at depth 2.")
    print("(3) doubling the window to 8 KB doubles that ceiling again; "
          "the 900 ns window has the bus time "
          f"(8 KB needs ~668 ns).")


if __name__ == "__main__":
    main()
