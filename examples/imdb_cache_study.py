#!/usr/bin/env python3
"""In-memory-database cache study: TPC-H on NVDIMM-C (Fig. 11).

Reproduces the enterprise half of the evaluation: 22 TPC-H queries on a
HANA-like engine whose main data lives on the device, normalised to the
/dev/pmem0 baseline — then asks the question the paper raises in
§VII-B5: how much of the damage is the LRC eviction policy's fault?

Run:  python examples/imdb_cache_study.py
"""

from repro.analysis.tables import render_table
from repro.workloads.tpch import (run_all_queries, simulate_hit_rate)

DB_PAGES = 25_600       # 100 GB at 1/1024 scale
PAGES_PER_GB = 256


def main() -> None:
    print("=== TPC-H SF-100 on NVDIMM-C (16 GB cache) ===\n")

    lrc = run_all_queries(DB_PAGES, 16 * PAGES_PER_GB, policy="lrc")
    lru = run_all_queries(DB_PAGES, 16 * PAGES_PER_GB, policy="lru")
    rows = []
    for a, b in zip(lrc, lru):
        rows.append([a.name, f"{a.slowdown:.1f}", f"{b.slowdown:.1f}",
                     f"{a.hit_rate:.2f}", f"{b.hit_rate:.2f}"])
    print(render_table(
        ["query", "LRC slowdown", "LRU slowdown", "LRC hit", "LRU hit"],
        rows))

    worst = max(lrc, key=lambda r: r.slowdown)
    mildest = min(lrc, key=lambda r: r.slowdown)
    print(f"\nmildest: {mildest.name} ({mildest.slowdown:.1f}x — "
          "sequential scan, compute-bound)")
    print(f"worst:   {worst.name} ({worst.slowdown:.1f}x — small random "
          "accesses thrashing the FIFO cache)")
    print("paper anchors: Q1 = 3.3x, Q20 = 78x\n")

    print("LRU hit rate vs cache size (the paper's in-house study):")
    for gb in (1, 2, 4, 8, 16):
        rate = simulate_hit_rate(gb * PAGES_PER_GB, DB_PAGES, policy="lru")
        bar = "#" * int(rate * 40)
        print(f"  {gb:>2} GB  {rate*100:5.1f} %  {bar}")
    print("paper: 78.7 % at 1 GB rising to 99.3 % at 16 GB")


if __name__ == "__main__":
    main()
