#!/usr/bin/env python3
"""Quickstart: build NVDIMM-C, run FIO against it, compare tiers.

This is the 5-minute tour: construct the simulated device (DRAM cache +
NVMC + Z-NAND + nvdc driver), the emulated-NVDIMM baseline, and measure
the three performance tiers of the paper's Fig. 8 — Baseline,
NVDC-Cached and NVDC-Uncached — with the FIO-like workload engine.

Run:  python examples/quickstart.py
"""

from repro.device.nvdimmc import NVDIMMCSystem, PmemSystem
from repro.experiments.common import build_uncached_nvdc
from repro.units import PAGE_4K, kb, mb
from repro.workloads.fio import FIOJob, FIORunner


def main() -> None:
    print("=== NVDIMM-C quickstart ===\n")

    # --- the two systems --------------------------------------------------
    # NVDIMM-C at 1/256 of the paper's Table-I capacities (every ratio
    # and every timing parameter is the paper's).
    nvdc = NVDIMMCSystem(cache_bytes=mb(64), device_bytes=mb(128))
    pmem = PmemSystem(device_bytes=mb(128))
    print(f"NVDIMM-C: {nvdc.region.num_slots} cache slots, "
          f"device window = "
          f"{nvdc.timeline.window_duration_ps / 1000:.0f} ns "
          f"every {nvdc.timeline.trefi_ps / 1e6:.1f} us")

    # --- cached tiers via FIO ---------------------------------------------
    job = FIOJob(name="4k-randread", rw="randread", bs=kb(4), size=mb(32),
                 numjobs=1, nops=2000)
    base = FIORunner(pmem).run(job)
    cached = FIORunner(nvdc).run(job)
    print(f"\nBaseline (/dev/pmem0):  {base.kiops:7.1f} KIOPS  "
          f"{base.bandwidth_mb_s:7.1f} MB/s")
    print(f"NVDC-Cached:            {cached.kiops:7.1f} KIOPS  "
          f"{cached.bandwidth_mb_s:7.1f} MB/s  "
          f"({cached.bandwidth_mb_s / base.bandwidth_mb_s:.0%} of "
          "baseline — the driver's coherence+mapping tax)")

    # --- the uncached tier -------------------------------------------------
    # Fill the cache so every access needs a writeback+cachefill pair
    # through the CP mailbox, 4 KB per refresh window.
    system, first_page, t = build_uncached_nvdc(extra_pages=80)
    start = t
    for i in range(80):
        t = system.op((first_page + i) * PAGE_4K, kb(4), False, t)
    bw = 80 * kb(4) / 1e6 / ((t - start) / 1e12)
    windows = (t - start) / 80 / system.timeline.trefi_ps
    print(f"NVDC-Uncached:          {bw:7.1f} MB/s  "
          f"({windows:.1f} refresh windows per 4 KB miss)")

    print("\nPaper's Fig. 8: baseline 2606, cached 1835, uncached "
          "57.3 MB/s — same tiers, same ordering, same ~31x cliff.")


if __name__ == "__main__":
    main()
