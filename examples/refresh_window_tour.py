#!/usr/bin/env python3
"""A guided tour of the tRFC mechanism at DDR4-command granularity.

Walks the paper's core idea on the command-accurate stack:

1. the host iMC refreshes the DRAM every tREFI (PREA then REF);
2. the NVMC's deserializer+detector decodes REFRESH off the CA tap;
3. the NVMC waits out the JEDEC tRFC and then owns the bus for the
   extended-tRFC window, moving up to 4 KB;
4. host traffic resumes afterwards — zero collisions;
5. a "rogue" NVMC that ignores the rule corrupts the channel at once.

Run:  python examples/refresh_window_tour.py
"""

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.errors import ProtocolError
from repro.nvmc.agent import NVMCProtocolAgent
from repro.sim import Engine
from repro.units import mb, us


def build(respect_windows=True, raise_on_collision=True):
    engine = Engine()
    device = DRAMDevice(NVDIMMC_1600, capacity_bytes=mb(64))
    bus = SharedBus(NVDIMMC_1600, device,
                    raise_on_collision=raise_on_collision)
    imc = IntegratedMemoryController(engine, NVDIMMC_1600, bus)
    agent = NVMCProtocolAgent(NVDIMMC_1600, bus,
                              respect_windows=respect_windows)
    imc.start_refresh_process()
    return engine, device, bus, imc, agent


def main() -> None:
    spec = NVDIMMC_1600
    print("=== The shared-bus trick, step by step ===\n")
    print(f"tREFI = {spec.trefi_ps/1e6:.1f} us | JEDEC tRFC = "
          f"{spec.trfc_device_ps/1e3:.0f} ns | programmed tRFC = "
          f"{spec.trfc_ps/1e3:.0f} ns | device window = "
          f"{spec.extra_trfc_ps/1e3:.0f} ns\n")

    # -- the well-behaved device -------------------------------------------
    engine, device, bus, imc, agent = build()
    payload = bytes(range(256)) * 16
    transfers = [agent.queue_write(i * 4096, payload) for i in range(3)]
    t = 0
    for i in range(20):
        _, t = imc.host_read((i % 256) * 64, 64, t + us(1))
    engine.run(until=us(40))

    print("windows used by the NVMC:")
    for i, tr in enumerate(transfers):
        window = imc.timeline.window_containing(tr.completed_ps)
        print(f"  4 KB write #{i}: done at {tr.completed_ps/1e6:.3f} us "
              f"(inside window {window.index}: "
              f"[{window.start_ps/1e6:.3f}, {window.end_ps/1e6:.3f}] us)")
    print(f"\nhost commands + device commands on one bus, collisions: "
          f"{bus.collision_count}")
    print(f"refresh detector: {len(agent.detector.detections)} REFs seen, "
          f"{agent.detector.false_positives} false positives, "
          f"{agent.detector.false_negatives} false negatives")
    assert device.peek(0, 16) == payload[:16]
    print("data integrity check: OK\n")

    # -- the rogue device -----------------------------------------------------
    print("now the same, but the NVMC ignores the tRFC rule...")
    engine, device, bus, imc, agent = build(respect_windows=False,
                                            raise_on_collision=False)
    agent.queue_write(0, payload)
    t = 0
    try:
        for i in range(20):
            _, t = imc.host_read((i % 256) * 64, 64, t + us(1))
        engine.run(until=us(40))
        print(f"  -> {bus.collision_count} bus collisions recorded")
    except ProtocolError as exc:
        print(f"  -> protocol violation: {exc}")
    print("\nThat's the whole paper in one run: the refresh window is "
          "the only safe time to share a DDR4 bus without a handshake.")


if __name__ == "__main__":
    main()
