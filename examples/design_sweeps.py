#!/usr/bin/env python3
"""Design-choice sweeps with ASCII visualisation.

Sweeps the three knobs DESIGN.md calls out — eviction policy vs cache
size, refresh rate vs media latency, and window size vs CP queue depth
— and draws the grids and curves directly in the terminal.

Run:  python examples/design_sweeps.py
"""

from repro.analysis.charts import bar_chart, line_chart
from repro.experiments.sweeps import (cache_policy_sweep,
                                      operating_map_sweep,
                                      window_depth_sweep)
from repro.workloads.tpch import run_all_queries


def main() -> None:
    print("=== design-choice sweeps ===\n")

    print(cache_policy_sweep().render())
    print("\n(the §VII-B5 grid: LRU reaches ~99 % at 16 GB; the PoC's "
          "LRC never quite does)\n")

    print(operating_map_sweep().render())
    print("\n(the Fig. 12 x Fig. 13 map: faster refresh + faster media "
          "move the device toward SCM-class bandwidth)\n")

    print(window_depth_sweep().render())
    best = window_depth_sweep().best_cell()
    print(f"\n(best cell: {best[0]} KB windows at depth {best[1]} -> "
          f"{best[2]:.0f} MB/s)\n")

    # Fig. 11 as a bar chart, log-scaled so Q20 doesn't flatten the rest.
    results = run_all_queries(25_600, 4_096)
    print("TPC-H slowdown per query (log scale):")
    print(bar_chart([r.name for r in results],
                    [r.slowdown for r in results],
                    width=44, unit="x", log=True))

    # The tREFI trade as a curve.
    from repro.experiments.fig13_trefi import POINTS
    print("\nhost cached bandwidth vs refresh interval (paper points):")
    print(line_chart([p for p, _ in POINTS][::-1],
                     [bw for _, bw in POINTS][::-1],
                     width=40, height=8,
                     x_label="tREFI (us)", y_label="MB/s"))


if __name__ == "__main__":
    main()
