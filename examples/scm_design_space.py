#!/usr/bin/env python3
"""The storage-class-memory design space (Figs. 12 + 13 together).

The architecture has one global knob — the refresh rate — that trades
host bandwidth against device windows, and one technology axis — the
NVM media's 4 KB latency (tD).  This example sweeps both and prints the
operating map the paper's conclusion is drawn from: NVM with
tD <= 1.85 us plus a quadrupled refresh rate gives a *balanced* SCM
(device ~900 MB/s while the host keeps >80 % of its cached bandwidth).

Run:  python examples/scm_design_space.py
"""

from repro.analysis.tables import render_table
from repro.device.hypothetical import HypotheticalSystem
from repro.experiments.common import build_cached_nvdc
from repro.units import kb, mb, us
from repro.workloads.fio import FIOJob, FIORunner

#: Candidate media, by 4 KB access latency (public figures; the NAND
#: rows are the paper's own §III-A classification).
MEDIA = [
    ("DRAM-class", 0.0),
    ("STT-MRAM", 0.3),
    ("PRAM (fast)", 1.85),
    ("PRAM (slow)", 3.9),
    ("one tREFI", 7.8),
    ("Z-NAND", 12.0),
    ("NAND (TLC)", 70.0),
]


def host_bandwidth(trefi_us: float) -> float:
    system = build_cached_nvdc(trefi_ps=us(trefi_us))
    result = FIORunner(system).run(
        FIOJob(rw="randread", bs=kb(4), size=mb(32), nops=1200))
    return result.bandwidth_mb_s


def main() -> None:
    print("=== SCM design space: media latency x refresh rate ===\n")

    rows = []
    for name, td_us in MEDIA:
        device_bw = HypotheticalSystem(us(td_us)).uncached_bandwidth_mb_s()
        verdict = ("balanced SCM" if device_bw >= 900
                   else "storage-ish" if device_bw >= 200 else "too slow")
        rows.append([name, f"{td_us:g}", f"{device_bw:.0f}", verdict])
    print("device-side (uncached) bandwidth by media, CP depth 1:")
    print(render_table(["media", "tD (us)", "MB/s", "verdict"], rows))
    print("\npaper's cut line: tD <= 1.85 us (STT-MRAM / fast PRAM) "
          "-> >= 914 MB/s\n")

    print("host-side cached bandwidth by refresh rate (the cost side):")
    rows = []
    base = None
    for label, trefi in (("tREFI", 7.8), ("tREFI2", 3.9), ("tREFI4", 1.95)):
        bw = host_bandwidth(trefi)
        base = base or bw
        rows.append([label, f"{trefi}", f"{bw:.0f}",
                     f"{(1 - bw / base) * 100:.0f} %"])
    print(render_table(["rate", "tREFI (us)", "host MB/s", "loss"], rows))
    print("\noperating point the paper recommends: tREFI4 + low-latency "
          "NVM -> ~914 MB/s uncached, ~83 % of host bandwidth kept.")


if __name__ == "__main__":
    main()
