#!/usr/bin/env python3
"""Power-failure drill: the §V-C persistence story, end to end.

1. An "application" writes records into DAX-mapped pages (through the
   CPU cache) and flushes them — the libpmem discipline.
2. Power fails.  The battery-backed PMIC keeps the device alive while
   the firmware drains every valid DRAM-cache page to Z-NAND, ignoring
   the tRFC rule (§V-C).
3. On "reboot", all flushed data is recovered from the media.
4. The drill then demonstrates the race the paper warns about: a store
   still sitting in the iMC's write pending queue when the drain
   snapshots its page is lost — NVDIMM-C's precise persistence domain
   is the DRAM cache, not the WPQ.
5. Finally the fault-injection campaign runner replays the same story
   adversarially: power cuts scheduled mid-DMA, mid-writeback and
   mid-drain, each verified page-by-page through drain, remount and
   metadata-journal replay (`python -m repro faults run` does this at
   full scale).

Run:  python examples/power_failure_drill.py
"""

from repro.ddr.imc import WritePendingQueue
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.faults import INJECTORS, run_campaign
from repro.units import PAGE_4K, mb


def main() -> None:
    print("=== power-failure drill ===\n")
    system = NVDIMMCSystem(cache_bytes=mb(4), device_bytes=mb(64),
                           with_cpu_cache=True)
    driver, cache = system.driver, system.cpu_cache

    # -- application writes + flush (the persisted set) ---------------------
    records = {}
    for page in range(6):
        slot, _ = driver.fault(page, 0, for_write=True)
        paddr = system.region.slot_paddr(slot)
        payload = (f"record-{page}:".encode() * 200)[:PAGE_4K]
        cache.store(paddr, payload)
        cache.flush_range(paddr, PAGE_4K)     # clflush the page
        cache.sfence()
        driver.mark_write(page)
        records[page] = payload
    print(f"wrote and flushed {len(records)} pages through the CPU cache")

    # -- one unflushed store stuck in the WPQ -------------------------------
    wpq = WritePendingQueue()
    slot0 = driver.page_to_slot[0]
    racy_paddr = system.region.slot_paddr(slot0)
    wpq.enqueue(racy_paddr, b"LATE-STORE" + bytes(54))
    print("plus one store still in the write pending queue (not yet in "
          "the DRAM cache)\n")

    # -- power failure --------------------------------------------------------
    power = PowerFailureModel(driver, wpq=wpq)
    report = power.power_fail(flush_wpq_first=False)
    print(f"POWER LOSS: firmware drained {report.pages_drained} pages to "
          f"Z-NAND, {report.wpq_entries_lost} WPQ entries lost in the race")

    # -- recovery --------------------------------------------------------------
    recovered = power.recover()
    intact = sum(1 for page, payload in records.items()
                 if recovered.read_page(page) == payload)
    print(f"REBOOT: {intact}/{len(records)} flushed pages recovered intact")
    first = recovered.read_page(0)[:10]
    print(f"page 0 starts with {first!r} — the WPQ store never made it "
          "(the §V-C race)\n")

    print("moral (§V-C): with the DRAM-as-frontend architecture the "
          "reliable persistence domain is the DRAM cache; code must "
          "clflush+sfence before counting anything as durable.\n")

    # -- the adversarial version: scheduled power cuts ----------------------
    print("=== fault campaign: scheduled power cuts ===\n")
    cuts = ["power-loss-dma", "power-loss-writeback", "power-loss-drain"]
    campaign = run_campaign(seed=0, only=cuts)
    for cell in campaign.cells:
        tag = ("recovers" if INJECTORS[cell.fault].recoverable
               else "loses data honestly")
        print(f"{cell.fault:<22} x {cell.workload:<10} ({tag}): "
              f"recovered={cell.recovered} lost={cell.lost} "
              f"violations={cell.violations} "
              f"-> {'ok' if cell.ok else 'FAIL'}")
    print("\nthe cuts mid-DMA and mid-writeback recover every committed "
          "page\n(the in-flight-writeback journal entry covers the "
          "victim); the\nbattery dying mid-drain loses pages and the "
          "replay says so.")


if __name__ == "__main__":
    main()
