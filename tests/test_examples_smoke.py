"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them green.
Each is run in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Examples that deliberately break protocol rules (the window tour
#: demonstrates a rogue master colliding) run without the sanitizers.
_EXEMPT = {"refresh_window_tour.py"}

PARAMS = [pytest.param(name, marks=pytest.mark.sanitizer_exempt)
          if name in _EXEMPT else name for name in EXAMPLES]


@pytest.mark.parametrize("script", PARAMS)
def test_example_runs(script, capsys, monkeypatch):
    # Examples must not depend on argv or cwd.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced almost no output"


def test_all_expected_examples_present():
    expected = {"quickstart.py", "refresh_window_tour.py",
                "imdb_cache_study.py", "power_failure_drill.py",
                "scm_design_space.py", "roadmap_ablation.py",
                "design_sweeps.py"}
    assert expected <= set(EXAMPLES)


def test_quickstart_reports_all_three_tiers(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Baseline" in out
    assert "NVDC-Cached" in out
    assert "NVDC-Uncached" in out
