"""Tests for the repro.check.lint AST passes and the check CLI."""

from pathlib import Path


from repro.check.lint import LintFinding, lint_file, lint_paths
from repro.cli import main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def plant(tmp_path: Path, source: str, name: str = "mod.py",
          subdir: str = "sim") -> Path:
    """Write a module into a simulation-scoped tmp package."""
    pkg = tmp_path / subdir
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return path


def codes(findings: "list[LintFinding]") -> list[str]:
    return [f.code for f in findings]


class TestDeterminismRule:
    def test_time_time_flagged(self, tmp_path):
        path = plant(tmp_path, "import time\nnow = time.time()\n")
        assert codes(lint_file(path)) == ["REPRO001"]

    def test_datetime_now_flagged(self, tmp_path):
        path = plant(tmp_path,
                     "import datetime\nstamp = datetime.datetime.now()\n")
        assert codes(lint_file(path)) == ["REPRO001"]

    def test_module_level_random_flagged(self, tmp_path):
        path = plant(tmp_path, "import random\nx = random.randint(0, 9)\n")
        assert codes(lint_file(path)) == ["REPRO001"]

    def test_seeded_random_instance_ok(self, tmp_path):
        path = plant(tmp_path,
                     "import random\nrng = random.Random(7)\n"
                     "x = rng.randint(0, 9)\n")
        assert lint_file(path) == []

    def test_out_of_scope_dir_ignored(self, tmp_path):
        path = plant(tmp_path, "import time\nnow = time.time()\n",
                     subdir="analysis")
        assert lint_file(path) == []


class TestUnitHygieneRule:
    def test_float_literal_into_ps_flagged(self, tmp_path):
        path = plant(tmp_path, "delay_ps = 1.5 * 1000\n")
        assert codes(lint_file(path)) == ["REPRO002"]

    def test_true_division_into_ns_flagged(self, tmp_path):
        path = plant(tmp_path, "def f(a, b):\n    t_ns = a / b\n    return t_ns\n")
        assert codes(lint_file(path)) == ["REPRO002"]

    def test_augmented_division_flagged(self, tmp_path):
        path = plant(tmp_path, "def f(t_ps):\n    t_ps /= 2\n    return t_ps\n")
        assert codes(lint_file(path)) == ["REPRO002"]

    def test_floor_division_ok(self, tmp_path):
        path = plant(tmp_path, "def f(a, b):\n    t_ps = a // b\n    return t_ps\n")
        assert lint_file(path) == []

    def test_unit_converter_boundary_ok(self, tmp_path):
        path = plant(tmp_path,
                     "from repro.units import us\nt_ps = us(1.5)\n"
                     "u_ps = round(3 / 2)\n")
        assert lint_file(path) == []

    def test_float_annotation_opt_out(self, tmp_path):
        path = plant(tmp_path, "rate_ps: float = 0.25 * 4\n")
        assert lint_file(path) == []

    def test_noqa_suppresses(self, tmp_path):
        path = plant(tmp_path, "delay_ps = 1.5  # noqa: REPRO002\n")
        assert lint_file(path) == []


class TestCalibrationRule:
    def test_uncited_constant_flagged(self, tmp_path):
        path = plant(tmp_path,
                     "class C:\n"
                     "    # just a tunable\n"
                     "    knob_ps: int = 17\n",
                     name="calibration.py", subdir="perf")
        found = lint_file(path)
        assert codes(found) == ["REPRO003"]
        assert "knob_ps" in found[0].message

    def test_cited_constant_ok(self, tmp_path):
        path = plant(tmp_path,
                     "class C:\n"
                     "    # anchored to Fig. 8 (646 KIOPS)\n"
                     "    knob_ps: int = 17\n"
                     "    other_ps: int = 3\n",
                     name="calibration.py", subdir="perf")
        assert lint_file(path) == []

    def test_uncited_block_disarms(self, tmp_path):
        path = plant(tmp_path,
                     "class C:\n"
                     "    # anchored to Fig. 8\n"
                     "    knob_ps: int = 17\n"
                     "    # a new section without a citation\n"
                     "    other_ps: int = 3\n",
                     name="calibration.py", subdir="perf")
        found = lint_file(path)
        assert codes(found) == ["REPRO003"]
        assert "other_ps" in found[0].message

    def test_repo_calibration_is_cited(self):
        assert lint_file(REPO_SRC / "perf" / "calibration.py") == []


class TestGeneratorRule:
    def test_yielded_literal_in_process_flagged(self, tmp_path):
        path = plant(tmp_path,
                     "def proc(engine):\n"
                     "    yield Timeout(10)\n"
                     "    yield 5\n")
        assert codes(lint_file(path)) == ["REPRO004"]

    def test_bare_yield_in_process_flagged(self, tmp_path):
        path = plant(tmp_path,
                     "def proc(lock):\n"
                     "    yield lock.acquire()\n"
                     "    yield\n"
                     "    lock.release()\n")
        assert codes(lint_file(path)) == ["REPRO004"]

    def test_plain_generator_not_a_process(self, tmp_path):
        path = plant(tmp_path,
                     "def naturals(n):\n"
                     "    for i in range(n):\n"
                     "        yield i + 1\n")
        assert lint_file(path) == []


class TestResourceRule:
    def test_acquire_without_release_flagged(self, tmp_path):
        path = plant(tmp_path,
                     "def f(lock):\n"
                     "    yield lock.acquire()\n")
        assert codes(lint_file(path)) == ["REPRO005"]

    def test_acquire_release_pair_ok(self, tmp_path):
        path = plant(tmp_path,
                     "def f(lock):\n"
                     "    yield lock.acquire()\n"
                     "    lock.release()\n")
        assert lint_file(path) == []

    def test_with_block_counts_as_managed(self, tmp_path):
        path = plant(tmp_path,
                     "def f(lock):\n"
                     "    with lock:\n"
                     "        lock.acquire()\n")
        assert lint_file(path) == []


class TestTreeAndCli:
    def test_repo_tree_is_clean(self):
        assert lint_paths([REPO_SRC]) == []

    def test_cli_clean_tree_exits_zero(self, capsys):
        assert main(["check", "lint", str(REPO_SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        planted = plant(tmp_path, "import time\nt = time.time()\n")
        assert main(["check", "lint", str(planted)]) == 1
        out = capsys.readouterr().out
        assert "REPRO001" in out

    def test_cli_missing_path_exits_two(self, tmp_path):
        assert main(["check", "lint", str(tmp_path / "nope.py")]) == 2

    def test_findings_sorted_and_located(self, tmp_path):
        planted = plant(tmp_path,
                        "import time\n"
                        "b_ps = 1.5\n"
                        "t = time.time()\n")
        found = lint_paths([tmp_path])
        assert [f.line for f in found] == sorted(f.line for f in found)
        rendered = str(found[0])
        assert str(planted) in rendered and ":2:" in rendered
