"""Trace-based audit: device commands never leave their windows.

Independent of the collision detector, this audit replays the bus
trace after a mixed run and proves *every* command the NVMC issued lies
inside an extended-tRFC window — the mechanism's contract, checked from
the recorded evidence rather than the mechanism's own bookkeeping.
"""

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.sim import Engine
from repro.sim.trace import Tracer
from repro.units import mb, us

SPEC = NVDIMMC_1600


def run_traced():
    tracer = Tracer(enabled=True, categories=("ddr.cmd",))
    engine = Engine()
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device, tracer=tracer)
    imc = IntegratedMemoryController(engine, SPEC, bus)
    agent = NVMCProtocolAgent(SPEC, bus)
    imc.start_refresh_process()
    for i in range(12):
        agent.queue_write(i * 4096, bytes([i]) * 4096)
    t = 0
    for i in range(60):
        _, t = imc.host_read((i % 256) * 64, 64, t + us(1.2))
    engine.run(until=us(140))
    assert agent.backlog == 0
    return tracer, imc


class TestTraceAudit:
    def test_every_nvmc_command_is_inside_a_window(self):
        tracer, imc = run_traced()
        nvmc_cmds = [r for r in tracer if r.fields.get("master") == "nvmc"]
        assert nvmc_cmds, "trace captured no device commands"
        for record in nvmc_cmds:
            window = imc.timeline.window_containing(record.time_ps)
            assert window is not None, (
                f"NVMC command at {record.time_ps} ps outside any window:"
                f" {record.message}")

    def test_no_host_command_inside_a_window(self):
        tracer, imc = run_traced()
        host_cmds = [r for r in tracer if r.fields.get("master") == "iMC"]
        assert host_cmds
        for record in host_cmds:
            # REF itself marks the window's start; every other host
            # command must stay clear of the usable interval.
            if record.message.startswith("REF"):
                continue
            window = imc.timeline.window_containing(record.time_ps)
            assert window is None, (
                f"host command inside window {window}: {record.message}")

    def test_trace_contains_both_masters_interleaved(self):
        tracer, _ = run_traced()
        masters = [r.fields.get("master") for r in tracer]
        assert "nvmc" in masters and "iMC" in masters
        # Interleaving: the sequence switches masters many times.
        switches = sum(1 for a, b in zip(masters, masters[1:]) if a != b)
        assert switches > 10
