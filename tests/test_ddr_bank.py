"""Tests for the per-bank state machine and timing enforcement."""

import pytest

from repro.ddr.bank import Bank, BankState
from repro.ddr.spec import DDR4_1600
from repro.errors import ProtocolError, TimingViolationError


@pytest.fixture
def bank():
    return Bank(0, DDR4_1600)


SPEC = DDR4_1600


class TestActivate:
    def test_activate_opens_row(self, bank):
        bank.activate(row=5, now_ps=0)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 5

    def test_double_activate_rejected(self, bank):
        bank.activate(5, 0)
        with pytest.raises(ProtocolError):
            bank.activate(6, SPEC.trcd_ps)

    def test_activate_respects_trp(self, bank):
        bank.activate(5, 0)
        t = SPEC.tras_ps
        bank.precharge(t)
        with pytest.raises(TimingViolationError):
            bank.activate(6, t + SPEC.trp_ps - 1)
        bank.activate(6, t + SPEC.trp_ps)

    def test_activate_during_refresh_rejected(self, bank):
        bank.begin_refresh(0)
        with pytest.raises(ProtocolError):
            bank.activate(1, 100)


class TestColumnAccess:
    def test_read_needs_open_row(self, bank):
        """Fig. 2a C2: READ after the row was closed under the reader."""
        with pytest.raises(ProtocolError):
            bank.read(5, 0)

    def test_read_wrong_row_rejected(self, bank):
        bank.activate(5, 0)
        with pytest.raises(ProtocolError):
            bank.read(6, SPEC.trcd_ps)

    def test_read_respects_trcd(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolationError):
            bank.read(5, SPEC.trcd_ps - 1)
        bank.read(5, SPEC.trcd_ps)

    def test_back_to_back_reads_respect_tccd(self, bank):
        bank.activate(5, 0)
        t = SPEC.trcd_ps
        bank.read(5, t)
        with pytest.raises(TimingViolationError):
            bank.read(5, t + SPEC.tccd_ps - 1)
        bank.read(5, t + SPEC.tccd_ps)

    def test_write_records_recovery(self, bank):
        bank.activate(5, 0)
        t = SPEC.trcd_ps
        bank.write(5, t)
        assert bank.last_write_end_ps > t


class TestPrecharge:
    def test_precharge_closes_row(self, bank):
        bank.activate(5, 0)
        bank.precharge(SPEC.tras_ps)
        assert bank.state is BankState.IDLE
        assert bank.open_row == -1

    def test_precharge_idle_is_noop(self, bank):
        bank.precharge(0)
        assert bank.state is BankState.IDLE

    def test_precharge_respects_tras(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolationError):
            bank.precharge(SPEC.tras_ps - 1)

    def test_precharge_respects_twr(self, bank):
        bank.activate(5, 0)
        t = SPEC.trcd_ps
        bank.write(5, t)
        early = bank.last_write_end_ps + SPEC.twr_ps - 1
        with pytest.raises(TimingViolationError):
            bank.precharge(early)
        bank.precharge(bank.last_write_end_ps + SPEC.twr_ps)


class TestRefresh:
    def test_refresh_requires_precharged(self, bank):
        """§III-B: DDR4 controllers must PREA before REFRESH."""
        bank.activate(5, 0)
        with pytest.raises(ProtocolError):
            bank.begin_refresh(SPEC.tras_ps)

    def test_refresh_cycle(self, bank):
        bank.begin_refresh(0)
        assert bank.state is BankState.REFRESHING
        bank.end_refresh(SPEC.trfc_device_ps)
        assert bank.state is BankState.IDLE

    def test_access_during_refresh_rejected(self, bank):
        bank.begin_refresh(0)
        with pytest.raises(ProtocolError):
            bank.read(0, 100)
        with pytest.raises(ProtocolError):
            bank.precharge(100)

    def test_end_refresh_when_idle_rejected(self, bank):
        with pytest.raises(ProtocolError):
            bank.end_refresh(0)

    def test_activate_legal_immediately_after_refresh(self, bank):
        """JEDEC: REF-to-ACT spacing is tRFC alone, no extra tRP."""
        bank.begin_refresh(0)
        end = SPEC.trfc_device_ps
        bank.end_refresh(end)
        bank.activate(1, end)
        assert bank.open_row == 1


class TestStats:
    def test_counters(self, bank):
        bank.activate(1, 0)
        t = SPEC.trcd_ps
        bank.read(1, t)
        bank.write(1, t + SPEC.tccd_ps)
        assert bank.stats["activates"] == 1
        assert bank.stats["reads"] == 1
        assert bank.stats["writes"] == 1
