"""Tracer emit fast-path and capacity-drop semantics.

The emit early-outs (disabled tracer, category filter) must fire before
record construction and before subscriber delivery; the capacity bound
must drop records from *storage only* — subscribers still observe every
record that passed the filters, which is what lets the ``repro.check``
sanitizers certify zero-drop observation even on a bounded tracer.
"""

import warnings

import pytest

from repro.sim.trace import NULL_TRACER, TraceMeter, Tracer


class TestEmitEarlyOut:
    def test_disabled_tracer_delivers_nothing_to_subscribers(self):
        tracer = Tracer(enabled=False)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(0, "ddr.cmd", "hi")
        assert seen == []
        assert tracer.records == []
        assert tracer.dropped == 0

    def test_category_filter_uses_prefix_tuple(self):
        tracer = Tracer(enabled=True, categories=("ddr.", "nvmc.dma"))
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(0, "ddr.cmd", "kept")
        tracer.emit(1, "nvmc.dma", "kept")
        tracer.emit(2, "nvmc.dmaX", "kept (prefix match)")
        tracer.emit(3, "cp.post", "filtered")
        tracer.emit(4, "nvmc.other", "filtered")
        assert [r.message for r in tracer.records] == [
            "kept", "kept", "kept (prefix match)"]
        # Filtered records reach neither storage nor subscribers.
        assert len(seen) == 3

    def test_categories_normalised_to_tuple(self):
        tracer = Tracer(enabled=True, categories=["ddr."])  # type: ignore[arg-type]
        assert isinstance(tracer.categories, tuple)
        tracer.emit(0, "ddr.cmd", "ok")
        assert len(tracer.records) == 1

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestCapacityDropSemantics:
    def make_bounded(self, capacity=2):
        tracer = Tracer(enabled=True, capacity=capacity)
        seen = []
        tracer.subscribe(seen.append)
        return tracer, seen

    def test_drop_is_storage_only(self):
        tracer, seen = self.make_bounded(capacity=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(5):
                tracer.emit(i, "ddr.cmd", f"r{i}")
        # Storage kept the first 2; subscribers observed all 5.
        assert [r.message for r in tracer.records] == ["r0", "r1"]
        assert tracer.dropped == 3
        assert [r.message for r in seen] == [f"r{i}" for i in range(5)]

    def test_drop_warns_once(self):
        tracer, _ = self.make_bounded(capacity=1)
        tracer.emit(0, "a", "kept")
        with pytest.warns(RuntimeWarning, match="capacity"):
            tracer.emit(1, "a", "dropped")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.emit(2, "a", "dropped quietly")
        assert tracer.dropped == 2

    def test_certification_counter_unaffected_by_early_out(self):
        """Filtered/disabled emits are not drops: certification (which
        refuses on ``dropped > 0``) only cares about storage losses."""
        tracer = Tracer(enabled=True, categories=("ddr.",), capacity=10)
        tracer.emit(0, "cp.post", "filtered, not dropped")
        assert tracer.dropped == 0
        assert len(tracer.records) == 0
        tracer.enabled = False
        tracer.emit(1, "ddr.cmd", "disabled, not dropped")
        assert tracer.dropped == 0

    def test_clear_resets_drop_state(self):
        tracer, _ = self.make_bounded(capacity=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tracer.emit(0, "a", "x")
            tracer.emit(1, "a", "y")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer) == 0


class TestTraceMeter:
    def test_counts_emitted_and_peak(self):
        TraceMeter.reset()
        tracer = Tracer(enabled=True, capacity=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(4):
                tracer.emit(i, "a", "x")
        assert TraceMeter.records_emitted == 4
        assert TraceMeter.peak_retained == 2
        TraceMeter.reset()
        assert TraceMeter.records_emitted == 0
        assert TraceMeter.peak_retained == 0

    def test_disabled_tracer_does_not_touch_meter(self):
        TraceMeter.reset()
        Tracer(enabled=False).emit(0, "a", "x")
        assert TraceMeter.records_emitted == 0
