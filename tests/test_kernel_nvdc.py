"""Tests for the nvdc driver: slots, miss path, coherence, eviction."""

import pytest

from repro.device.nvdimmc import NVDIMMCSystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb, us


def small_system(**kwargs):
    """A tiny system: few slots so eviction happens fast."""
    defaults = dict(cache_bytes=mb(2),    # ~475 slots: eviction happens fast
                    device_bytes=mb(32),
                    firmware=FirmwareModel(step_ps=0),
                    with_cpu_cache=True)
    defaults.update(kwargs)
    return NVDIMMCSystem(**defaults)


def page_of(tag):
    return bytes([tag % 256]) * PAGE_4K


class TestFaultPath:
    def test_fault_installs_mapping(self):
        system = small_system()
        driver = system.driver
        slot, end = driver.fault(5, now_ps=0, for_write=False)
        assert driver.lookup(5) == slot
        assert end > 0
        assert driver.stats.misses == 1
        assert driver.stats.cachefills == 1

    def test_fault_on_cached_page_rejected(self):
        system = small_system()
        system.driver.fault(5, 0, False)
        with pytest.raises(Exception):
            system.driver.fault(5, 0, False)

    def test_cachefill_brings_nand_data(self):
        system = small_system()
        system.nand.preload(9, page_of(9))
        slot, _ = system.driver.fault(9, 0, False)
        paddr = system.region.slot_paddr(slot)
        assert system.dram.peek(paddr, PAGE_4K) == page_of(9)

    def test_miss_latency_is_at_least_three_windows(self):
        """§V-A: a cachefill needs >= 3 tREFI even with instant FW."""
        system = small_system()
        _, end = system.driver.fault(0, 0, False)
        assert end >= 3 * system.timeline.trefi_ps

    def test_full_cache_miss_latency_doubles(self):
        """§V-A: writeback + cachefill -> >= 6 tREFI."""
        system = small_system()
        driver = system.driver
        for page in range(system.region.num_slots):   # fill every slot
            driver.fault(page, 0, True)
        assert driver.free_slot_count == 0
        t0 = system.nvmc.ready_ps
        _, end = driver.fault(6000, t0, False)
        assert end - t0 >= 6 * system.timeline.trefi_ps
        assert driver.stats.writebacks == 1


class TestEviction:
    def test_lrc_evicts_first_cached(self):
        system = small_system()
        driver = system.driver
        nslots = system.region.num_slots
        for page in range(nslots):
            driver.fault(page, 0, False)
        driver.fault(6000, system.nvmc.ready_ps, False)
        assert driver.lookup(0) is None     # first-cached page gone
        assert driver.lookup(6000) is not None
        assert driver.stats.evictions == 1

    def test_victim_writeback_persists_data(self):
        system = small_system()
        driver = system.driver
        nslots = system.region.num_slots
        # Dirty page 0 with known content via the DRAM slot.
        slot0, t = driver.fault(0, 0, True)
        system.dram.poke(system.region.slot_paddr(slot0), page_of(77))
        for page in range(1, nslots):
            t = max(t, system.nvmc.ready_ps)
            driver.fault(page, t, False)
        # Next miss evicts page 0 (LRC); its bytes must reach NAND.
        driver.fault(6000, system.nvmc.ready_ps, False)
        data, _ = system.nand.read_page(0, 0)
        assert data == page_of(77)

    def test_clean_victim_skips_writeback_with_precise_dirty(self):
        system = small_system(conservative_dirty=False)
        driver = system.driver
        nslots = system.region.num_slots
        for page in range(nslots):
            driver.fault(page, 0, False)   # clean fills
        driver.fault(6000, system.nvmc.ready_ps, False)
        assert driver.stats.writebacks == 0

    def test_conservative_dirty_always_writes_back(self):
        system = small_system(conservative_dirty=True)
        driver = system.driver
        for page in range(system.region.num_slots):
            driver.fault(page, 0, False)
        driver.fault(6000, system.nvmc.ready_ps, False)
        assert driver.stats.writebacks == 1


class TestCoherence:
    def test_writeback_flushes_cpu_cache(self):
        """§V-B: without clflush the device would snapshot stale DRAM."""
        system = small_system(conservative_dirty=False)
        driver, cache = system.driver, system.cpu_cache
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        # CPU writes through its cache; DRAM still stale.
        cache.store(paddr, page_of(42))
        assert system.dram.peek(paddr, 1) != page_of(42)[:1]
        driver.mark_write(0)
        # Fill the cache and force eviction of page 0.
        for page in range(1, system.region.num_slots):
            driver.fault(page, system.nvmc.ready_ps, False)
        driver.fault(6000, system.nvmc.ready_ps, False)
        data, _ = system.nand.read_page(0, 0)
        assert data == page_of(42)

    @pytest.mark.sanitizer_exempt
    def test_broken_driver_loses_cpu_writes(self):
        """The same flow with skip_coherence=True corrupts data —
        reproducing the hazard the paper designs against."""
        system = small_system(conservative_dirty=False)
        system.driver.skip_coherence = True
        driver, cache = system.driver, system.cpu_cache
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        cache.store(paddr, page_of(42))
        driver.mark_write(0)
        for page in range(1, system.region.num_slots):
            driver.fault(page, system.nvmc.ready_ps, False)
        driver.fault(6000, system.nvmc.ready_ps, False)
        data, _ = system.nand.read_page(0, 0)
        assert data != page_of(42)   # stale bytes hit the media

    def test_cachefill_invalidates_stale_lines(self):
        """§V-B: CPU-cached lines from the slot's previous tenant must
        not survive a cachefill."""
        system = small_system()
        driver, cache = system.driver, system.cpu_cache
        system.nand.preload(3, page_of(3))
        slot, _ = driver.fault(7, 0, False)
        paddr = system.region.slot_paddr(slot)
        cache.load(paddr, 64)                    # cache old tenant's line
        # Evict page 7, then fault page 3 into (eventually) that slot.
        for page in range(8, 8 + system.region.num_slots):
            driver.fault(page, system.nvmc.ready_ps, False)
        assert driver.lookup(7) is None
        slot3, _ = driver.fault(3, system.nvmc.ready_ps, False)
        paddr3 = system.region.slot_paddr(slot3)
        assert cache.load(paddr3, 64) == page_of(3)[:64]


class TestDeviceAccess:
    def test_device_access_hit_is_instant(self):
        system = small_system()
        system.driver.device_access(0, 0, for_write=False)
        mapping = system.driver.device_access(0, us(1000), for_write=False)
        assert mapping.end_ps == us(1000)

    def test_block_io_round_trip(self):
        system = small_system()
        end = system.driver.write_page(11, page_of(5), 0)
        data, _ = system.driver.read_page(11, end)
        assert data == page_of(5)

    def test_capacity_is_device_bytes(self):
        system = small_system()
        assert system.driver.capacity_bytes == mb(32)


class TestPowerCutRollback:
    """A cut between eviction and cachefill must not strand the victim:
    the mapping rolls back so the §V-C drain snapshot still covers it."""

    def cut_system(self):
        from repro.units import kb
        return small_system(cache_bytes=kb(96),    # 20 slots
                            device_bytes=mb(1),
                            with_cpu_cache=False)

    def fill_cache(self, system):
        t = 0
        for page in range(system.region.num_slots):
            t = system.driver.write_page(page, page_of(page), t)
        assert system.driver.free_slot_count == 0
        return t

    def test_cut_mid_writeback_rolls_back_the_eviction(self):
        from repro.device.power import PowerFailureModel
        from repro.errors import PowerLossInterrupt
        from repro.faults.clock import FaultClock
        from repro.recovery import recover_mount
        system = self.cut_system()
        driver = system.driver
        t = self.fill_cache(system)
        system.nvmc.fault_clock = FaultClock().cut_on_visit(
            1, site="nvmc.writeback.program")
        with pytest.raises(PowerLossInterrupt):
            driver.fault(100, t, False)
        assert driver.stats.eviction_rollbacks == 1
        assert driver.inflight_writeback is None
        # The victim's only current copy is the cache slot: mapping back.
        assert driver.lookup(0) is not None
        assert driver.lookup(100) is None
        assert driver.free_slot_count == 0
        # ...which is exactly what lets the drain snapshot cover it.
        power = PowerFailureModel(driver)
        power.power_fail(now_ps=t)
        fresh, report = recover_mount(system, journal=power.journal,
                                      now_ps=t)
        assert report.replay_lost == 0
        for page in range(system.region.num_slots):
            data, t = fresh.driver.read_page(page, t)
            assert data == page_of(page)

    def test_cut_mid_cachefill_returns_the_slot(self):
        from repro.device.power import PowerFailureModel
        from repro.errors import PowerLossInterrupt
        from repro.faults.clock import FaultClock
        from repro.recovery import recover_mount
        system = self.cut_system()
        driver = system.driver
        t = self.fill_cache(system)
        system.nvmc.fault_clock = FaultClock().cut_on_visit(
            1, site="nvmc.cachefill.read")
        with pytest.raises(PowerLossInterrupt):
            driver.fault(100, t, False)
        # The writeback completed: the victim is durably on media, the
        # eviction stands, and the freed slot is back on the free list.
        assert driver.stats.eviction_rollbacks == 0
        assert driver.inflight_writeback is None
        assert driver.lookup(0) is None
        assert driver.lookup(100) is None
        assert driver.free_slot_count == 1
        power = PowerFailureModel(driver)
        power.power_fail(now_ps=t)
        fresh, _ = recover_mount(system, journal=power.journal, now_ps=t)
        data, t = fresh.driver.read_page(0, t)
        assert data == page_of(0)   # written back before the cut
