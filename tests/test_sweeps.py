"""Tests for the parameter-sweep framework and the design-choice grids."""

import pytest

from repro.experiments.sweeps import (Sweep, cache_policy_sweep,
                                      operating_map_sweep,
                                      window_depth_sweep)


class TestSweepFramework:
    def make(self):
        calls = []

        def fn(r, c):
            calls.append((r, c))
            return r * 10 + c

        sweep = Sweep(name="demo", row_label="r", col_label="c",
                      rows=(1, 2), cols=(3, 4), fn=fn)
        return sweep, calls

    def test_full_grid(self):
        sweep, calls = self.make()
        grid = sweep.run()
        assert grid == [[13.0, 14.0], [23.0, 24.0]]
        assert len(calls) == 4

    def test_memoised(self):
        sweep, calls = self.make()
        sweep.run()
        sweep.run()
        assert len(calls) == 4

    def test_at(self):
        sweep, _ = self.make()
        assert sweep.at(2, 3) == 23.0

    def test_best_cell(self):
        sweep, _ = self.make()
        assert sweep.best_cell() == (2, 4, 24.0)

    def test_render(self):
        sweep, _ = self.make()
        text = sweep.render()
        assert "# demo" in text
        assert "r\\c" in text
        assert "23" in text


class TestDesignChoiceGrids:
    def test_cache_policy_grid_shape(self):
        sweep = cache_policy_sweep()
        grid = sweep.run()
        assert len(grid) == 5 and len(grid[0]) == 3
        # Hit rate grows with cache size for every policy.
        for j in range(3):
            column = [grid[i][j] for i in range(5)]
            assert column == sorted(column)
        # LRU >= LRC at every size (the §IV-B point).
        for i in range(5):
            assert sweep.at(sweep.rows[i], "lru") >= sweep.at(
                sweep.rows[i], "lrc")

    def test_operating_map_monotone(self):
        sweep = operating_map_sweep()
        grid = sweep.run()
        # Bandwidth falls with media latency at every refresh rate...
        for row in grid:
            assert row == sorted(row, reverse=True)
        # ...and a faster refresh rate never hurts the device side.
        for j in range(len(sweep.cols)):
            assert grid[2][j] >= grid[0][j] * 0.99

    def test_window_depth_grid(self):
        sweep = window_depth_sweep()
        # 8 KB windows double the saturated ceiling of 4 KB windows.
        ratio = sweep.at(8, 4) / sweep.at(4, 4)
        assert ratio == pytest.approx(2.0, rel=0.1)
        assert sweep.best_cell()[2] == sweep.at(8, 8)
