"""Tests for time/size unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTimeConversions:
    def test_nanoseconds_round_trip(self):
        assert units.ns(350) == 350_000
        assert units.to_ns(units.ns(350)) == pytest.approx(350)

    def test_microseconds(self):
        assert units.us(7.8) == 7_800_000

    def test_milliseconds_and_seconds(self):
        assert units.ms(64) == 64 * units.MS
        assert units.sec(1) == units.SEC

    def test_fractional_nanoseconds_round_to_ps(self):
        # DDR4-2400 half clock: 0.416666... ns -> 417 ps
        assert units.ns(0.4166667) == 417

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_ns_monotone(self, value):
        assert units.ns(value) <= units.ns(value + 1)

    def test_format_time_selects_unit(self):
        assert units.format_time(1_250_000) == "1.250 us"
        assert units.format_time(350_000) == "350.000 ns"
        assert units.format_time(units.sec(2)) == "2.000 s"
        assert units.format_time(999) == "999 ps"


class TestSizes:
    def test_binary_sizes(self):
        assert units.kb(4) == 4096
        assert units.mb(1) == 1 << 20
        assert units.gb(16) == 16 << 30

    def test_constants(self):
        assert units.CACHELINE == 64
        assert units.PAGE_4K == 4096

    def test_format_size(self):
        assert units.format_size(4096) == "4.0 KiB"
        assert units.format_size(16 << 30) == "16.0 GiB"
        assert units.format_size(3) == "3 B"


class TestRates:
    def test_bandwidth_mb_s(self):
        # 4 KB in 1 us -> 4096 bytes / 1e-6 s = 4096 MB/s (decimal)
        assert units.bandwidth_mb_s(4096, units.us(1)) == pytest.approx(4096.0)

    def test_bandwidth_zero_time(self):
        assert units.bandwidth_mb_s(4096, 0) == 0.0

    def test_iops(self):
        assert units.iops(1000, units.ms(1)) == pytest.approx(1_000_000)

    def test_iops_zero_time(self):
        assert units.iops(5, 0) == 0.0

    @given(st.integers(min_value=1, max_value=10**12),
           st.integers(min_value=1, max_value=10**15))
    def test_bandwidth_positive(self, nbytes, time_ps):
        assert units.bandwidth_mb_s(nbytes, time_ps) > 0
