"""Tests for the DDR4 controller's command-sequence generation."""

import pytest

from repro.ddr.bus import SharedBus
from repro.ddr.controller import DDR4Controller
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import DDR4_1600
from repro.errors import ProtocolError
from repro.units import mb

SPEC = DDR4_1600


@pytest.fixture
def setup():
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device)
    ctrl = DDR4Controller("imc", SPEC, bus)
    return device, bus, ctrl


class TestReadWrite:
    def test_write_read_round_trip(self, setup):
        _device, _bus, ctrl = setup
        data = bytes(range(256)) * 16  # 4 KB
        end = ctrl.write(0, data, 0)
        out, _ = ctrl.read(0, len(data), end)
        assert out == data

    def test_read_returns_end_after_data(self, setup):
        _device, _bus, ctrl = setup
        _, end = ctrl.read(0, 64, 0)
        # Closed row: ACT + tRCD + RD + tCL + burst
        expected = SPEC.trcd_ps + SPEC.tcl_ps + SPEC.burst_time_ps
        assert end == expected

    def test_row_hit_skips_activate(self, setup):
        device, _bus, ctrl = setup
        _, end1 = ctrl.read(0, 64, 0)
        _, end2 = ctrl.read(64, 64, end1)
        # Second read on the open row: no ACT, so only tCCD + tCL + burst
        assert end2 - end1 <= SPEC.tccd_ps + SPEC.tcl_ps + SPEC.burst_time_ps
        assert device.banks[0].stats["activates"] == 1

    def test_row_switch_precharges(self, setup):
        device, _bus, ctrl = setup
        row_stride = SPEC.row_size_bytes * SPEC.total_banks  # same bank
        _, end = ctrl.read(0, 64, 0)
        ctrl.read(row_stride, 64, end)
        assert device.banks[0].stats["precharges"] == 1
        assert device.banks[0].stats["activates"] == 2

    def test_unaligned_transfer_rejected(self, setup):
        _device, _bus, ctrl = setup
        with pytest.raises(ProtocolError):
            ctrl.read(1, 64, 0)
        with pytest.raises(ProtocolError):
            ctrl.read(0, 63, 0)
        with pytest.raises(ProtocolError):
            ctrl.write(0, b"x", 0)

    def test_4kb_write_data_lands_in_device(self, setup):
        device, _bus, ctrl = setup
        data = bytes((i * 7) % 256 for i in range(4096))
        ctrl.write(8192, data, 0)
        assert device.peek(8192, 4096) == data

    def test_byte_counters(self, setup):
        _device, _bus, ctrl = setup
        end = ctrl.write(0, bytes(128), 0)
        ctrl.read(0, 64, end)
        assert ctrl.bytes_written == 128
        assert ctrl.bytes_read == 64


class TestRefreshSequence:
    def test_precharge_all_then_refresh(self, setup):
        device, _bus, ctrl = setup
        _, end = ctrl.read(0, 64, 0)
        t = ctrl.precharge_all(end)
        ctrl.refresh(t)
        assert device.refreshes_done == 1

    def test_prea_waits_for_tras(self, setup):
        device, _bus, ctrl = setup
        ctrl.read(0, 64, 0)
        # PREA immediately after the ACT would violate tRAS; the
        # controller must defer it rather than raise.
        ctrl.precharge_all(SPEC.trcd_ps + SPEC.tccd_ps)
        assert device.banks[0].stats["precharges"] == 1

    @pytest.mark.sanitizer_exempt
    def test_refresh_without_prea_raises_via_device(self, setup):
        _device, _bus, ctrl = setup
        _, end = ctrl.read(0, 64, 0)
        with pytest.raises(ProtocolError):
            ctrl.refresh(end)


class TestBusyUntil:
    def test_overlapping_calls_serialize(self, setup):
        _device, _bus, ctrl = setup
        end1 = ctrl.write(0, bytes(4096), 0)
        # Requesting a start in the middle of the previous transfer is
        # deferred, not interleaved.
        out, end2 = ctrl.read(0, 64, end1 // 2)
        assert end2 > end1
        assert out == bytes(64)
