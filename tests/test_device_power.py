"""Tests for the power-failure drain and the §V-C persistence race."""

import pytest

from repro.ddr.imc import WritePendingQueue
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def make_system():
    return NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                         firmware=FirmwareModel(step_ps=0),
                         with_cpu_cache=True)


def page_of(tag):
    return bytes([tag % 256]) * PAGE_4K


class TestDrain:
    def test_cached_pages_survive_power_loss(self):
        system = make_system()
        driver = system.driver
        for page in range(5):
            slot, _ = driver.fault(page, 0, True)
            system.dram.poke(system.region.slot_paddr(slot), page_of(page))
        power = PowerFailureModel(driver)
        report = power.power_fail()
        assert report.pages_drained == 5
        recovered = power.recover()
        for page in range(5):
            assert recovered.read_page(page) == page_of(page)

    def test_drain_covers_only_valid_mappings(self):
        system = make_system()
        driver = system.driver
        driver.fault(0, 0, True)
        power = PowerFailureModel(driver)
        report = power.power_fail()
        assert report.pages_drained == 1
        assert report.drained_pages == [0]

    def test_clean_recovery_of_nand_resident_pages(self):
        """Pages already written back are readable regardless."""
        system = make_system()
        system.nand.preload(9, page_of(9))
        power = PowerFailureModel(system.driver)
        power.power_fail()
        assert power.recover().read_page(9) == page_of(9)


class TestWPQRace:
    def test_wpq_lost_in_the_race(self):
        """§V-C: WPQ contents may never reach the DRAM cache."""
        system = make_system()
        driver = system.driver
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        system.dram.poke(paddr, page_of(1))
        wpq = WritePendingQueue()
        wpq.enqueue(paddr, page_of(99)[:64])   # newer data stuck in WPQ
        power = PowerFailureModel(driver, wpq=wpq)
        report = power.power_fail(flush_wpq_first=False)
        assert report.wpq_entries_lost == 1
        recovered = power.recover()
        assert recovered.read_page(0) == page_of(1)   # old data won

    def test_wpq_survives_when_adr_wins(self):
        system = make_system()
        driver = system.driver
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        system.dram.poke(paddr, page_of(1))
        wpq = WritePendingQueue()
        wpq.enqueue(paddr, b"\x63" * 64)
        power = PowerFailureModel(driver, wpq=wpq)
        report = power.power_fail(flush_wpq_first=True)
        assert report.wpq_entries_raced_in == 1
        recovered = power.recover()
        assert recovered.read_page(0)[:64] == b"\x63" * 64
        assert recovered.read_page(0)[64:] == page_of(1)[64:]


class TestDrainEdgeCases:
    def test_zero_dirty_pages_drains_nothing(self):
        """An empty cache still drains (and replays) cleanly."""
        system = make_system()
        power = PowerFailureModel(system.driver)
        report = power.power_fail()
        assert report.pages_drained == 0
        assert report.drained_pages == []
        assert not report.interrupted
        replay = power.recover().replay()
        assert replay.clean
        assert replay.pages_recovered == 0

    def test_inflight_writeback_is_drained(self):
        """A victim popped from ``slot_to_page`` mid-writeback is only
        reachable through the driver's in-flight journal entry; the
        drain must still persist it (§V-C metadata area)."""
        system = make_system()
        driver = system.driver
        slot, _ = driver.fault(0, 0, True)
        system.dram.poke(system.region.slot_paddr(slot), page_of(7))
        # Freeze the moment inside fault(): mapping gone, ack pending.
        del driver.slot_to_page[slot]
        driver.inflight_writeback = (slot, 0)
        power = PowerFailureModel(driver)
        report = power.power_fail()
        assert report.pages_drained == 1
        assert power.recover().read_page(0) == page_of(7)
        assert power.recover().replay().clean

    def test_back_to_back_power_fail_is_idempotent(self):
        """A second power event re-walks the same journal and programs
        the same bytes: same report, same clean replay."""
        system = make_system()
        driver = system.driver
        for page in range(4):
            slot, _ = driver.fault(page, 0, True)
            system.dram.poke(system.region.slot_paddr(slot), page_of(page))
        power = PowerFailureModel(driver)
        first = power.power_fail()
        second = power.power_fail(now_ps=2_000_000)
        assert second.pages_drained == first.pages_drained == 4
        assert second.drained_pages == first.drained_pages
        replay = power.recover().replay()
        assert replay.clean and replay.pages_recovered == 4

    def test_interrupted_drain_reports_losses_honestly(self):
        """A battery dying mid-drain leaves undrained journal entries;
        replay must count them lost, never recovered."""
        from repro.errors import PowerLossInterrupt
        from repro.faults import FaultClock

        system = make_system()
        driver = system.driver
        for page in range(5):
            slot, _ = driver.fault(page, 0, True)
            system.dram.poke(system.region.slot_paddr(slot), page_of(page))
        power = PowerFailureModel(driver)
        power.fault_clock = FaultClock().cut_on_visit(3, site="power.drain")
        with pytest.raises(PowerLossInterrupt):
            power.power_fail()
        replay = power.recover().replay()
        assert replay.pages_recovered == 2
        assert replay.pages_lost == 3
        assert not replay.clean
