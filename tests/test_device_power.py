"""Tests for the power-failure drain and the §V-C persistence race."""

from repro.ddr.imc import WritePendingQueue
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def make_system():
    return NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                         firmware=FirmwareModel(step_ps=0),
                         with_cpu_cache=True)


def page_of(tag):
    return bytes([tag % 256]) * PAGE_4K


class TestDrain:
    def test_cached_pages_survive_power_loss(self):
        system = make_system()
        driver = system.driver
        for page in range(5):
            slot, _ = driver.fault(page, 0, True)
            system.dram.poke(system.region.slot_paddr(slot), page_of(page))
        power = PowerFailureModel(driver)
        report = power.power_fail()
        assert report.pages_drained == 5
        recovered = power.recover()
        for page in range(5):
            assert recovered.read_page(page) == page_of(page)

    def test_drain_covers_only_valid_mappings(self):
        system = make_system()
        driver = system.driver
        driver.fault(0, 0, True)
        power = PowerFailureModel(driver)
        report = power.power_fail()
        assert report.pages_drained == 1
        assert report.drained_pages == [0]

    def test_clean_recovery_of_nand_resident_pages(self):
        """Pages already written back are readable regardless."""
        system = make_system()
        system.nand.preload(9, page_of(9))
        power = PowerFailureModel(system.driver)
        power.power_fail()
        assert power.recover().read_page(9) == page_of(9)


class TestWPQRace:
    def test_wpq_lost_in_the_race(self):
        """§V-C: WPQ contents may never reach the DRAM cache."""
        system = make_system()
        driver = system.driver
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        system.dram.poke(paddr, page_of(1))
        wpq = WritePendingQueue()
        wpq.enqueue(paddr, page_of(99)[:64])   # newer data stuck in WPQ
        power = PowerFailureModel(driver, wpq=wpq)
        report = power.power_fail(flush_wpq_first=False)
        assert report.wpq_entries_lost == 1
        recovered = power.recover()
        assert recovered.read_page(0) == page_of(1)   # old data won

    def test_wpq_survives_when_adr_wins(self):
        system = make_system()
        driver = system.driver
        slot, _ = driver.fault(0, 0, True)
        paddr = system.region.slot_paddr(slot)
        system.dram.poke(paddr, page_of(1))
        wpq = WritePendingQueue()
        wpq.enqueue(paddr, b"\x63" * 64)
        power = PowerFailureModel(driver, wpq=wpq)
        report = power.power_fail(flush_wpq_first=True)
        assert report.wpq_entries_raced_in == 1
        recovered = power.recover()
        assert recovered.read_page(0)[:64] == b"\x63" * 64
        assert recovered.read_page(0)[64:] == page_of(1)[64:]
