"""The parallel experiment runner: determinism and id validation.

The byte-identity guarantee (serial ``results.json`` == parallel
``results.json``) is the contract that makes ``--jobs`` safe to use for
the committed report files; it is checked here on a cheap experiment
subset so the test stays fast.  The subset spans an analytic model (fig12) and a
command-accurate event-driven simulation (crosscheck), the two ways an
experiment can compute — both sanitizer-clean, so the suite-wide
ambient sanitizers stay attached (``validation`` is avoided here: its
noisy-detector scenarios deliberately mis-time device bus mastering).
"""

import pytest

from repro.analysis.export import to_csv, to_json
from repro.experiments.runner import ALL_EXPERIMENTS, resolve_jobs, run_all

CHEAP_SUBSET = ["fig12", "crosscheck"]


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_accepts_strings_from_argparse(self):
        assert resolve_jobs("3") == 3

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs("auto") >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs("-2")


class TestUnknownIds:
    def test_unknown_id_raises_and_names_valid_ids(self):
        with pytest.raises(ValueError) as excinfo:
            run_all(only=["fig12", "fig99"], verbose=False)
        message = str(excinfo.value)
        assert "fig99" in message
        assert "fig12" not in message.split(";")[0]  # only the bad id
        for exp_id in ALL_EXPERIMENTS:
            assert exp_id in message  # valid ids are listed

    def test_unknown_id_raises_before_any_work(self):
        # A pool must not be spun up for a doomed request either.
        with pytest.raises(ValueError):
            run_all(only=["nope"], verbose=False, jobs=4)


class TestParallelDeterminism:
    def test_serial_and_parallel_exports_are_byte_identical(self):
        serial = run_all(only=CHEAP_SUBSET, verbose=False, jobs=1)
        parallel = run_all(only=CHEAP_SUBSET, verbose=False, jobs=2)
        assert to_json(serial) == to_json(parallel)
        assert to_csv(serial) == to_csv(parallel)

    def test_parallel_preserves_declaration_order(self):
        # Ask in reverse: order must follow ALL_EXPERIMENTS declaration,
        # not the `only` list and not worker completion.
        records = run_all(only=list(reversed(CHEAP_SUBSET)), verbose=False,
                          jobs=2)
        assert [r.experiment_id for r in records] == CHEAP_SUBSET

    def test_jobs_capped_at_experiment_count(self):
        records = run_all(only=["fig12"], verbose=False, jobs=8)
        assert [r.experiment_id for r in records] == ["fig12"]
