"""Tests for the 1:8 deserializer and the refresh detector."""

import pytest

from repro.ddr.commands import CommandKind, encode
from repro.nvmc.deserializer import Deserializer, word_bits
from repro.nvmc.refresh_detector import RefreshDetector


class TestDeserializer:
    def test_emits_every_eight_samples(self):
        deser = Deserializer()
        for i in range(7):
            assert deser.push(True) is None
        word = deser.push(True)
        assert word == 0xFF
        assert deser.words_emitted == 1

    def test_bit_order_is_time_order(self):
        deser = Deserializer()
        pattern = [True, False, True, False, False, True, True, False]
        word = None
        for bit in pattern:
            word = deser.push(bit)
        assert word_bits(word) == pattern

    def test_reset_drops_partial(self):
        deser = Deserializer()
        deser.push(True)
        deser.push(True)
        assert deser.pending_samples == 2
        deser.reset()
        assert deser.pending_samples == 0
        for _ in range(7):
            assert deser.push(False) is None
        assert deser.push(False) == 0


class TestDetectorDecoding:
    def test_detects_refresh(self):
        det = RefreshDetector()
        det.observe(1000, encode(CommandKind.REF))
        assert det.detections == [1000]
        assert det.true_positives == 1
        assert det.false_positives == 0

    @pytest.mark.parametrize("kind", [
        CommandKind.ACT, CommandKind.RD, CommandKind.WR, CommandKind.PRE,
        CommandKind.PREA, CommandKind.MRS, CommandKind.ZQCL,
        CommandKind.NOP, CommandKind.DES, CommandKind.SRX,
    ])
    def test_ignores_other_commands(self, kind):
        det = RefreshDetector()
        det.observe(1000, encode(kind))
        assert det.detections == []
        assert det.false_positives == 0

    def test_sre_not_detected_as_refresh(self):
        """Self-refresh entry = REF pins + falling CKE; must not arm."""
        det = RefreshDetector()
        det.observe(1000, encode(CommandKind.SRE))
        assert det.detections == []
        assert det.false_positives == 0

    def test_command_stream_detects_each_refresh(self):
        det = RefreshDetector()
        stream = [CommandKind.ACT, CommandKind.RD, CommandKind.PREA,
                  CommandKind.REF, CommandKind.ACT, CommandKind.PREA,
                  CommandKind.REF, CommandKind.NOP]
        for i, kind in enumerate(stream):
            det.observe(i * 100, encode(kind))
        assert det.detections == [300, 600]
        assert det.commands_observed == len(stream)
        assert det.accuracy == 1.0

    def test_callback_fires_on_detection(self):
        hits = []
        det = RefreshDetector(on_refresh=hits.append)
        det.observe(5, encode(CommandKind.REF))
        det.observe(6, encode(CommandKind.ACT))
        assert hits == [5]


class TestDetectorNoise:
    def test_heavy_noise_causes_errors(self):
        det = RefreshDetector(noise_ber=0.2, seed=3)
        for i in range(500):
            kind = CommandKind.REF if i % 10 == 0 else CommandKind.ACT
            det.observe(i, encode(kind))
        assert det.false_positives + det.false_negatives > 0
        assert det.accuracy < 1.0

    def test_clean_channel_is_perfect(self):
        det = RefreshDetector(noise_ber=0.0)
        for i in range(1000):
            kind = CommandKind.REF if i % 7 == 0 else CommandKind.RD
            det.observe(i, encode(kind))
        assert det.accuracy == 1.0
        assert det.true_positives == len(
            [i for i in range(1000) if i % 7 == 0])

    def test_noise_is_deterministic_per_seed(self):
        def run(seed):
            det = RefreshDetector(noise_ber=0.05, seed=seed)
            for i in range(200):
                det.observe(i, encode(CommandKind.REF))
            return (det.true_positives, det.false_negatives)

        assert run(11) == run(11)
