"""Tests for the NAND die model: program-in-order, erase, wear, bad blocks."""

import dataclasses

import pytest

from repro.errors import MediaError
from repro.nand.device import NANDDie, PageState
from repro.nand.spec import ZNAND_TINY, ZNAND_64GB

SPEC = ZNAND_TINY
PAGE = b"\x5a" * SPEC.page_bytes


@pytest.fixture
def die():
    return NANDDie(SPEC)


class TestGeometry:
    def test_tiny_geometry_consistent(self):
        assert SPEC.blocks_per_plane > 0
        assert SPEC.total_pages * SPEC.page_bytes == SPEC.capacity_bytes // (
            1) or SPEC.total_pages > 0

    def test_paper_part_capacity(self):
        assert ZNAND_64GB.capacity_bytes == 64 << 30
        assert ZNAND_64GB.page_bytes == 4096

    def test_poc_phy_is_tenfold_slower(self):
        """§VII-C: 50 MHz PHY vs the media's ~500 MHz capability."""
        asic = ZNAND_64GB.with_phy_mhz(500)
        assert ZNAND_64GB.transfer_ps_per_page == (
            10 * asic.transfer_ps_per_page)


class TestProgramRead:
    def test_program_then_read(self, die):
        die.program_page(0, 0, 0, PAGE)
        assert die.read_page(0, 0, 0) == PAGE

    def test_erased_page_reads_ff(self, die):
        assert die.read_page(0, 0, 0) == b"\xff" * SPEC.page_bytes

    def test_program_must_be_in_order(self, die):
        die.program_page(0, 0, 0, PAGE)
        with pytest.raises(MediaError, match="out-of-order"):
            die.program_page(0, 0, 2, PAGE)
        die.program_page(0, 0, 1, PAGE)

    def test_program_wrong_size_rejected(self, die):
        with pytest.raises(MediaError):
            die.program_page(0, 0, 0, b"tiny")

    def test_page_state(self, die):
        assert die.page_state(0, 0, 0) is PageState.ERASED
        die.program_page(0, 0, 0, PAGE)
        assert die.page_state(0, 0, 0) is PageState.PROGRAMMED

    def test_out_of_range_rejected(self, die):
        with pytest.raises(MediaError):
            die.read_page(0, SPEC.blocks_per_plane, 0)
        with pytest.raises(MediaError):
            die.read_page(SPEC.planes_per_die, 0, 0)
        with pytest.raises(MediaError):
            die.read_page(0, 0, SPEC.pages_per_block)


class TestErase:
    def test_erase_clears_block_and_resets_cursor(self, die):
        die.program_page(0, 0, 0, PAGE)
        die.erase_block(0, 0)
        assert die.page_state(0, 0, 0) is PageState.ERASED
        die.program_page(0, 0, 0, PAGE)  # cursor back at 0

    def test_erase_counts_wear(self, die):
        die.erase_block(0, 0)
        die.erase_block(0, 0)
        assert die.block_info(0, 0).erase_count == 2

    def test_wearout_marks_bad(self):
        spec = dataclasses.replace(SPEC, endurance_pe_cycles=3)
        die = NANDDie(spec)
        for _ in range(3):
            die.erase_block(0, 0)
        assert die.is_bad(0, 0)
        with pytest.raises(MediaError):
            die.erase_block(0, 0)


class TestBadBlocks:
    def test_mark_bad_blocks_all_ops(self, die):
        die.mark_bad(0, 1)
        with pytest.raises(MediaError):
            die.read_page(0, 1, 0)
        with pytest.raises(MediaError):
            die.program_page(0, 1, 0, PAGE)
        with pytest.raises(MediaError):
            die.erase_block(0, 1)

    def test_factory_bad_blocks_seeded(self):
        spec = dataclasses.replace(SPEC, initial_bad_block_ppm=200_000)
        die = NANDDie(spec, rng_seed=42)
        total = SPEC.planes_per_die * SPEC.blocks_per_plane
        bad = total - len(die.good_blocks())
        assert bad > 0

    def test_no_seed_means_no_factory_bad_blocks(self, die):
        total = SPEC.planes_per_die * SPEC.blocks_per_plane
        assert len(die.good_blocks()) == total


class TestCounters:
    def test_op_counters(self, die):
        die.program_page(0, 0, 0, PAGE)
        die.read_page(0, 0, 0)
        die.erase_block(0, 0)
        assert (die.programs, die.reads, die.erases) == (1, 1, 1)
