"""Tests for the ECC codec model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UncorrectableError
from repro.nand.ecc import AgingParams, ECCCodec


PAYLOAD = bytes(i % 256 for i in range(4096))


class TestRoundTrip:
    def test_clean_round_trip(self):
        codec = ECCCodec()
        assert codec.decode(codec.encode(PAYLOAD)) == PAYLOAD

    def test_wrong_payload_size_rejected(self):
        codec = ECCCodec()
        with pytest.raises(UncorrectableError):
            codec.encode(b"short")

    def test_corrects_up_to_t_bits(self):
        codec = ECCCodec(t_bits=8)
        cw = codec.encode(PAYLOAD)
        cw.flipped_bits.extend(range(8))
        assert codec.decode(cw) == PAYLOAD
        assert codec.stats.bits_corrected == 8

    def test_uncorrectable_beyond_t(self):
        codec = ECCCodec(t_bits=8)
        cw = codec.encode(PAYLOAD)
        cw.flipped_bits.extend(range(9))
        with pytest.raises(UncorrectableError):
            codec.decode(cw)
        assert codec.stats.uncorrectable == 1

    def test_even_flips_cancel(self):
        """A bit flipped twice is back to its original value."""
        codec = ECCCodec(t_bits=1)
        cw = codec.encode(PAYLOAD)
        cw.flipped_bits.extend([5, 5, 7])   # bit 5 cancels; only 7 counts
        assert codec.decode(cw) == PAYLOAD

    @given(st.integers(min_value=0, max_value=72))
    @settings(max_examples=20, deadline=None)
    def test_budget_boundary(self, nflips):
        codec = ECCCodec(t_bits=72)
        cw = codec.encode(PAYLOAD)
        cw.flipped_bits.extend(range(nflips))
        assert codec.decode(cw) == PAYLOAD


class TestInjection:
    def test_zero_rber_injects_nothing(self):
        codec = ECCCodec()
        cw = codec.encode(PAYLOAD)
        assert codec.inject_errors(cw, 0.0) == 0

    def test_injection_count_tracks_rber(self):
        codec = ECCCodec(seed=1)
        total = 0
        trials = 200
        for _ in range(trials):
            cw = codec.encode(PAYLOAD)
            total += codec.inject_errors(cw, 1e-4)
        expected = trials * 4096 * 8 * 1e-4
        assert total == pytest.approx(expected, rel=0.25)

    def test_injection_is_deterministic_per_seed(self):
        a = ECCCodec(seed=9)
        b = ECCCodec(seed=9)
        cwa, cwb = a.encode(PAYLOAD), b.encode(PAYLOAD)
        a.inject_errors(cwa, 1e-5)
        b.inject_errors(cwb, 1e-5)
        assert cwa.flipped_bits == cwb.flipped_bits


class TestRBERModel:
    def test_fresh_block_at_floor(self):
        assert ECCCodec.rber_for_wear(0, 50_000) == pytest.approx(1e-8)

    def test_worn_block_at_ceiling(self):
        assert ECCCodec.rber_for_wear(50_000, 50_000) == pytest.approx(1e-4)

    def test_monotone_in_wear(self):
        values = [ECCCodec.rber_for_wear(k, 1000) for k in range(0, 1001, 100)]
        assert values == sorted(values)

    def test_wear_beyond_endurance_clamps(self):
        assert ECCCodec.rber_for_wear(10**9, 1000) == pytest.approx(1e-4)

    def test_zero_endurance_is_ceiling(self):
        assert ECCCodec.rber_for_wear(5, 0) == pytest.approx(1e-4)


class TestAgingParams:
    """The composed retention + read-disturb RBER model."""

    def test_new_unaged_block_is_pure_wear_floor(self):
        aging = AgingParams()
        assert aging.rber(0, 50_000, 0.0, 0) == pytest.approx(1e-8)

    def test_retention_term_scales_linearly_when_fresh(self):
        aging = AgingParams()
        base = aging.rber(0, 50_000, 0.0, 0)
        one = aging.rber(0, 50_000, 1.0, 0) - base
        three = aging.rber(0, 50_000, 3.0, 0) - base
        assert one == pytest.approx(aging.retention_per_year)
        assert three == pytest.approx(3 * one)

    def test_worn_block_retains_worse_than_fresh(self):
        aging = AgingParams()
        fresh = aging.rber(0, 50_000, 2.0, 0) - aging.rber(0, 50_000, 0, 0)
        worn = (aging.rber(50_000, 50_000, 2.0, 0)
                - aging.rber(50_000, 50_000, 0.0, 0))
        boost = 1 + aging.wear_retention_boost
        assert worn == pytest.approx(boost * fresh)

    def test_read_disturb_term(self):
        aging = AgingParams()
        base = aging.rber(0, 50_000, 0.0, 0)
        disturbed = aging.rber(0, 50_000, 0.0, 10_000)
        assert disturbed - base == pytest.approx(
            10 * aging.read_disturb_per_kread)

    def test_ceiling_caps_every_term(self):
        aging = AgingParams()
        assert aging.rber(10**9, 50_000, 10**6, 10**12) == aging.ceiling
        assert aging.ceiling < 2.2e-3   # below single-read uncorrectable

    def test_negative_inputs_clamp_to_zero_contribution(self):
        aging = AgingParams()
        assert aging.rber(0, 50_000, -5.0, -100) == pytest.approx(
            aging.rber(0, 50_000, 0.0, 0))

    @settings(max_examples=60, deadline=None)
    @given(erase=st.integers(min_value=0, max_value=120_000),
           bump=st.integers(min_value=1, max_value=60_000),
           years=st.floats(min_value=0, max_value=50,
                           allow_nan=False, allow_infinity=False),
           reads=st.integers(min_value=0, max_value=10**8))
    def test_monotone_in_erase_count(self, erase, bump, years, reads):
        aging = AgingParams()
        assert (aging.rber(erase + bump, 50_000, years, reads)
                >= aging.rber(erase, 50_000, years, reads))

    @settings(max_examples=60, deadline=None)
    @given(erase=st.integers(min_value=0, max_value=120_000),
           years=st.floats(min_value=0, max_value=50,
                           allow_nan=False, allow_infinity=False),
           extra=st.floats(min_value=0, max_value=50,
                           allow_nan=False, allow_infinity=False),
           reads=st.integers(min_value=0, max_value=10**8))
    def test_monotone_in_retention_age(self, erase, years, extra, reads):
        aging = AgingParams()
        assert (aging.rber(erase, 50_000, years + extra, reads)
                >= aging.rber(erase, 50_000, years, reads))

    @settings(max_examples=60, deadline=None)
    @given(erase=st.integers(min_value=0, max_value=120_000),
           years=st.floats(min_value=0, max_value=50,
                           allow_nan=False, allow_infinity=False),
           reads=st.integers(min_value=0, max_value=10**8),
           bump=st.integers(min_value=1, max_value=10**8))
    def test_monotone_in_read_count(self, erase, years, reads, bump):
        aging = AgingParams()
        assert (aging.rber(erase, 50_000, years, reads + bump)
                >= aging.rber(erase, 50_000, years, reads))


class TestStats:
    def test_counters_accumulate(self):
        codec = ECCCodec()
        for _ in range(3):
            codec.decode(codec.encode(PAYLOAD))
        assert codec.stats.encoded == 3
        assert codec.stats.decoded == 3
