"""End-to-end integration tests across the full stack.

Application -> CPUCore -> MMU (DAX fault) -> filesystem ->
nvdc driver -> CP protocol -> NVMC -> FTL -> Z-NAND, and back —
with eviction pressure, timing, and power failure in the loop.
"""

import random


from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.kernel.fs import DaxFilesystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def build_stack(cache_mb=1, device_mb=32, **kwargs):
    defaults = dict(firmware=FirmwareModel(step_ps=0),
                    with_cpu_cache=True, conservative_dirty=False)
    defaults.update(kwargs)
    system = NVDIMMCSystem(cache_bytes=mb(cache_mb),
                           device_bytes=mb(device_mb), **defaults)
    fs = DaxFilesystem(system.driver)
    mmu = MMU()
    core = CPUCore(0, mmu, system.cpu_cache)
    return system, fs, mmu, core


class TestApplicationView:
    def test_write_read_through_the_whole_stack(self):
        system, fs, mmu, core = build_stack()
        handle = fs.create("db", mb(2))
        fs.mmap(handle, mmu, vaddr=0x10000000)
        payload = bytes(range(256)) * 4
        for i in range(20):
            core.store(0x10000000 + i * PAGE_4K, payload)
        for i in range(20):
            assert core.load(0x10000000 + i * PAGE_4K,
                             len(payload)) == payload

    def test_data_survives_eviction_round_trip(self):
        """Write more pages than the cache holds; early pages must come
        back from Z-NAND with their exact contents."""
        system, fs, mmu, core = build_stack(cache_mb=1)
        nslots = system.region.num_slots
        handle = fs.create("big", (nslots + 64) * PAGE_4K)
        base = 0x20000000
        fs.mmap(handle, mmu, vaddr=base)
        rng = random.Random(5)
        contents = {}
        for i in range(nslots + 40):
            payload = bytes([rng.randrange(256)]) * 128
            core.store(base + i * PAGE_4K, payload)
            # Persist the page so the eviction writeback sees it.
            core.clflush_range(base + i * PAGE_4K, 128)
            core.sfence()
            system.driver.mark_write(i)
            contents[i] = payload
        assert system.driver.stats.evictions > 0
        mmu.flush_tlb()
        for i, payload in contents.items():
            assert core.load(base + i * PAGE_4K, 128) == payload, i

    def test_evicted_page_fault_brings_it_back(self):
        """After eviction the PTE is stale; re-access must fault and
        remap (the Fig. 6 loop, second time around)."""
        system, fs, mmu, core = build_stack(cache_mb=1)
        nslots = system.region.num_slots
        handle = fs.create("f", (nslots + 8) * PAGE_4K)
        fs.mmap(handle, mmu, vaddr=0x30000000)
        core.store(0x30000000, b"first-page")
        core.clflush_range(0x30000000, 64)
        core.sfence()
        system.driver.mark_write(0)
        for i in range(1, nslots + 4):
            core.store(0x30000000 + i * PAGE_4K, b"x")
        assert system.driver.lookup(0) is None   # evicted
        # The kernel would shoot the PTE down on eviction; model that.
        mmu.unmap_page(0x30000000 // PAGE_4K)
        faults_before = mmu.stats.faults
        assert core.load(0x30000000, 10) == b"first-page"
        assert mmu.stats.faults == faults_before + 1


class TestTimingConsistency:
    def test_miss_time_flows_into_fs_clock(self):
        system, fs, mmu, core = build_stack()
        handle = fs.create("t", mb(1))
        fs.mmap(handle, mmu, vaddr=0x40000000)
        core.load(0x40000000, 8)
        first_fault_time = fs.now_ps
        core.load(0x40000000 + PAGE_4K, 8)
        assert fs.now_ps > first_fault_time

    def test_windows_accounting_matches_operations(self):
        system, _, _, _ = build_stack()
        driver = system.driver
        for page in range(10):
            driver.fault(page, system.nvmc.ready_ps, for_write=False)
        total_ops = driver.stats.cachefills + driver.stats.writebacks
        # Ideal firmware: exactly 3 windows per CP operation (§V-A).
        assert driver.stats.windows_total == 3 * total_ops


class TestCrashDuringActivity:
    def test_power_failure_mid_workload_preserves_flushed_data(self):
        system, fs, mmu, core = build_stack(cache_mb=2)
        handle = fs.create("wal", mb(1))
        base = 0x50000000
        fs.mmap(handle, mmu, vaddr=base)
        committed = {}
        for i in range(30):
            payload = f"commit-{i}".encode()
            core.store(base + i * PAGE_4K, payload)
            if i % 2 == 0:    # only even records are "committed"
                core.clflush_range(base + i * PAGE_4K, len(payload))
                core.sfence()
                system.driver.mark_write(handle.start_page + i)
                committed[i] = payload
        power = PowerFailureModel(system.driver)
        power.power_fail()
        recovered = power.recover()
        for i, payload in committed.items():
            page = handle.start_page + i
            assert recovered.read_page(page)[:len(payload)] == payload

    def test_gc_pressure_does_not_corrupt(self):
        """Hammer overwrites until the FTL garbage-collects; data must
        stay exact through relocations."""
        system, _, _, _ = build_stack(cache_mb=1, device_mb=8)
        driver = system.driver
        nslots = system.region.num_slots
        rng = random.Random(9)
        reference = {}
        t = 0
        npages = min(driver.num_pages, nslots * 3)
        for i in range(nslots * 6):
            page = rng.randrange(npages)
            payload = bytes([i % 256]) * PAGE_4K
            t = max(t, system.nvmc.ready_ps)
            t = driver.write_page(page, payload, t)
            reference[page] = payload
        assert system.nand.ftl.stats.gc_invocations >= 0
        for page, payload in reference.items():
            data, t = driver.read_page(page, max(t, system.nvmc.ready_ps))
            assert data == payload, page
