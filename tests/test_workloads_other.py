"""Tests for file copy, STREAM validation, TPC-H, mixed load."""

import pytest

from repro.device.nvdimmc import NVDIMMCSystem
from repro.workloads.filecopy import run_file_copy
from repro.workloads.mixed_load import run_mixed_load, _check_record, \
    _make_record
from repro.workloads.stream_bench import run_stream_validation
from repro.workloads.tpch import (TPCH_QUERIES, generate_query_trace,
                                  run_all_queries, run_query,
                                  simulate_hit_rate)
from repro.units import mb


DB_PAGES = 25_600     # 100 GB at 1/1024 scale
CACHE_16GB = 4_096    # 16 GB at 1/1024 scale


class TestFileCopy:
    def test_fig7_shape(self):
        """Fast while slots are free, collapsing past the cache size."""
        system = NVDIMMCSystem(cache_bytes=mb(8), device_bytes=mb(64))
        result = run_file_copy(system, file_bytes=mb(16), buckets=16)
        cache_gb = system.region.layout.slots_bytes / 2**30
        early = result.bandwidth_at_gb(cache_gb * 0.5)
        late = result.bandwidth_mb_s[-1]
        assert early > 5 * late
        assert result.peak_mb_s <= 520 * 1.05   # SSD-limited

    def test_fig7_floor_near_paper(self):
        system = NVDIMMCSystem(cache_bytes=mb(8), device_bytes=mb(64))
        result = run_file_copy(system, file_bytes=mb(24), buckets=24)
        # Paper floor: 68 MB/s (writes need a writeback+cachefill pair;
        # the fill of a never-written page costs no NAND time).
        assert 40 <= result.floor_mb_s <= 100


class TestStreamValidation:
    def test_aging_run_is_clean(self):
        """§VII-A: no corruption, no collisions, detector perfect."""
        result = run_stream_validation(iterations=2)
        assert result.clean
        assert result.kernels_checked == 6
        assert result.false_positives == 0
        assert result.false_negatives == 0
        assert result.refreshes_detected > 0
        assert result.device_bytes_moved > 0


class TestTPCH:
    def test_traces_are_deterministic(self):
        a = generate_query_trace(TPCH_QUERIES["Q5"], DB_PAGES, seed=3)
        b = generate_query_trace(TPCH_QUERIES["Q5"], DB_PAGES, seed=3)
        assert a == b

    def test_traces_stay_in_range(self):
        for name, spec in TPCH_QUERIES.items():
            trace = generate_query_trace(spec, DB_PAGES, max_accesses=2000)
            assert all(0 <= p < DB_PAGES for p in trace), name

    def test_q1_anchor(self):
        result = run_query(TPCH_QUERIES["Q1"], DB_PAGES, CACHE_16GB)
        assert result.slowdown == pytest.approx(3.3, rel=0.1)

    def test_q20_anchor(self):
        result = run_query(TPCH_QUERIES["Q20"], DB_PAGES, CACHE_16GB)
        assert result.slowdown == pytest.approx(78, rel=0.12)

    def test_all_queries_slower_than_baseline(self):
        results = run_all_queries(DB_PAGES, CACHE_16GB)
        assert len(results) == 22
        assert all(r.slowdown > 1.0 for r in results)

    def test_lru_beats_lrc_on_skewed_traces(self):
        """The §IV-B observation: LRC ignores use recency, so on the
        skewed HANA-like traces it evicts hot pages and loses to LRU at
        every cache size (per-query uniform-random traces are a known
        FIFO~LRU tie, so the aggregate traces are the right probe)."""
        for gb in (1, 4, 16):
            lrc = simulate_hit_rate(gb * 256, DB_PAGES, policy="lrc")
            lru = simulate_hit_rate(gb * 256, DB_PAGES, policy="lru")
            assert lru > lrc, f"{gb} GB: lru {lru} <= lrc {lrc}"

    def test_hit_rate_study_range(self):
        """§VII-B5: LRU hit rate 78.7 -> 99.3 % from 1 to 16 GB."""
        low = simulate_hit_rate(256, DB_PAGES, policy="lru")    # 1 GB
        high = simulate_hit_rate(4096, DB_PAGES, policy="lru")  # 16 GB
        assert 0.70 <= low <= 0.85
        assert 0.95 <= high <= 1.0

    def test_hit_rate_monotone_in_cache_size(self):
        rates = [simulate_hit_rate(256 * g, DB_PAGES, policy="lru")
                 for g in (1, 2, 4, 8, 16)]
        assert rates == sorted(rates)


class TestMixedLoad:
    def test_records_validate(self):
        record = _make_record(3, 7, 99)
        assert _check_record(record, 99)
        assert not _check_record(record, 98)
        assert not _check_record(b"\x00" * 4096, 99)

    def test_mixed_load_clean_with_eviction_pressure(self):
        """Users' pages bounce through Z-NAND and must stay intact."""
        system = NVDIMMCSystem(cache_bytes=mb(1), device_bytes=mb(32),
                               with_cpu_cache=True)
        result = run_mixed_load(system, users=60, transactions_per_user=6,
                                pages_per_user=10)
        assert result.clean
        assert system.driver.stats.evictions > 0   # pressure was real
        assert result.transactions == 360

    @pytest.mark.sanitizer_exempt
    def test_mixed_load_broken_coherence_corrupts(self):
        """With the §V-B bracket removed, validation catches corruption."""
        system = NVDIMMCSystem(cache_bytes=mb(1), device_bytes=mb(32),
                               with_cpu_cache=True,
                               conservative_dirty=False)
        system.driver.skip_coherence = True
        result = run_mixed_load(system, users=60, transactions_per_user=6,
                                pages_per_user=10)
        assert not result.clean
