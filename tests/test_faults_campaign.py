"""Tests for the campaign runner, report schema, and faults CLI."""

import json

import pytest

from repro.faults import (INJECTORS, SCHEMA, campaign_matrix, injector_names,
                          render_report, run_campaign, validate_report)
from repro.faults.campaign import cell_seed_for
from repro.faults.cli import main as faults_main


@pytest.fixture(scope="module")
def quick_result():
    return run_campaign(seed=0, quick=True)


class TestMatrix:
    def test_quick_matrix_shape(self):
        matrix = campaign_matrix(quick=True)
        assert len(matrix) == 6
        assert all(INJECTORS[fault].kind == "dax" for fault, _ in matrix)

    def test_full_matrix_covers_every_injector(self):
        matrix = campaign_matrix(quick=False)
        faults = {fault for fault, _ in matrix}
        assert faults == set(injector_names())
        # Every dax injector runs under both workloads.
        dax = [name for name in injector_names()
               if INJECTORS[name].kind == "dax"]
        assert len(matrix) == 2 * len(dax) + 1

    def test_cell_seeds_distinct_and_stable(self):
        seeds = {cell_seed_for(0, fault, wl)
                 for fault, wl in campaign_matrix(quick=False)}
        assert len(seeds) == len(campaign_matrix(quick=False))
        assert cell_seed_for(0, "cp-corrupt", "seq-write") == \
            cell_seed_for(0, "cp-corrupt", "seq-write")
        assert cell_seed_for(0, "cp-corrupt", "seq-write") != \
            cell_seed_for(1, "cp-corrupt", "seq-write")


class TestQuickCampaign:
    def test_every_cell_recovers_cleanly(self, quick_result):
        assert quick_result.ok
        for cell in quick_result.cells:
            assert cell.violations == 0, cell.fault
            assert cell.lost == 0, cell.fault
            assert cell.injected > 0, cell.fault

    def test_faults_are_detected(self, quick_result):
        for cell in quick_result.cells:
            assert cell.detected > 0, cell.fault

    def test_deterministic_for_same_seed(self, quick_result):
        again = run_campaign(seed=0, quick=True)
        assert render_report(again) == render_report(quick_result)

    def test_seed_changes_the_report(self, quick_result):
        other = run_campaign(seed=1, quick=True)
        assert render_report(other) != render_report(quick_result)


class TestReportSchema:
    def test_render_validates_clean(self, quick_result):
        payload = json.loads(render_report(quick_result))
        assert payload["schema"] == SCHEMA
        assert validate_report(payload) == []
        assert payload["totals"]["cells"] == len(quick_result.cells)

    def test_timestamp_is_injected(self, quick_result):
        payload = json.loads(
            render_report(quick_result, timestamp="20260101-000000"))
        assert payload["generated_at"] == "20260101-000000"
        assert validate_report(payload) == []

    def test_validator_rejects_mutations(self, quick_result):
        payload = json.loads(render_report(quick_result))
        payload["totals"]["injected"] = -1
        assert validate_report(payload)
        payload = json.loads(render_report(quick_result))
        del payload["cells"][0]["recovered"]
        assert validate_report(payload)
        payload = json.loads(render_report(quick_result))
        payload["schema"] = "repro.faults/999"
        assert validate_report(payload)


class TestCLI:
    def test_run_quick_writes_report(self, tmp_path, capsys):
        rc = faults_main(["run", "--quick", "--seed", "0",
                          "--out", str(tmp_path)])
        assert rc == 0
        reports = list(tmp_path.glob("FAULTS_*.json"))
        assert len(reports) == 1
        payload = json.loads(reports[0].read_text())
        assert validate_report(payload) == []
        out = capsys.readouterr().out
        assert "campaign clean" in out

    def test_list_prints_registry(self, capsys):
        rc = faults_main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in injector_names():
            assert name in out


class TestOnly:
    """The ``--only`` matrix restriction (CLI and library)."""

    def test_restricted_campaign_keeps_cell_seeds(self, quick_result):
        restricted = run_campaign(seed=0, quick=True, only=["cp-corrupt"])
        assert {cell.fault for cell in restricted.cells} == {"cp-corrupt"}
        full_cells = {(c.fault, c.workload): c for c in quick_result.cells}
        for cell in restricted.cells:
            twin = full_cells[(cell.fault, cell.workload)]
            # Same cell, same seed, same outcome as in the full matrix.
            assert (cell.injected, cell.detected, cell.recovered,
                    cell.lost) == (twin.injected, twin.detected,
                                   twin.recovered, twin.lost)

    def test_unknown_injector_raises(self):
        with pytest.raises(ValueError, match="no-such-fault"):
            run_campaign(seed=0, quick=True, only=["no-such-fault"])

    def test_cli_only_runs_the_named_cells(self, tmp_path, capsys):
        rc = faults_main(["run", "--quick", "--seed", "0",
                          "--only", "cp-corrupt",
                          "--out", str(tmp_path)])
        assert rc == 0
        [report] = list(tmp_path.glob("FAULTS_*.json"))
        payload = json.loads(report.read_text())
        assert {cell["fault"] for cell in payload["cells"]} == {"cp-corrupt"}
        assert "only cp-corrupt" in capsys.readouterr().out

    def test_cli_unknown_id_lists_the_known_ones(self, tmp_path, capsys):
        rc = faults_main(["run", "--quick", "--only", "bogus,cp-corrupt",
                          "--out", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown fault ids: bogus" in err
        for name in injector_names():
            assert name in err
        assert not list(tmp_path.glob("FAULTS_*.json"))
