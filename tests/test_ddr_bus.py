"""Tests for the shared bus: collisions, snooping, reservations.

These tests exercise the exact hazards of the paper's Fig. 2a and show
that the bus model detects them — the mechanism's whole purpose.
"""

import pytest

from repro.ddr.bus import SharedBus
from repro.ddr.commands import Command, CommandKind
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.errors import BusCollisionError, ProtocolError
from repro.units import mb

SPEC = DDR4_1600


def make_bus(raise_on_collision=True, spec=SPEC):
    device = DRAMDevice(spec, capacity_bytes=mb(64))
    return SharedBus(spec, device, raise_on_collision=raise_on_collision)


class TestCACollisions:
    @pytest.mark.sanitizer_exempt
    def test_same_slot_two_masters_collides(self):
        """Fig. 2a C1: NVMC ACT while iMC issues a command."""
        bus = make_bus()
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), 1000)
        with pytest.raises(BusCollisionError):
            bus.issue("nvmc", Command(CommandKind.ACT, bank=1, row=2), 1500)

    def test_disjoint_slots_ok(self):
        bus = make_bus()
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), 0)
        bus.issue("nvmc", Command(CommandKind.ACT, bank=1, row=2),
                  SPEC.clock_ps)
        assert bus.collision_count == 0

    def test_same_master_overlap_is_protocol_error(self):
        bus = make_bus()
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), 0)
        with pytest.raises(ProtocolError):
            bus.issue("imc", Command(CommandKind.ACT, bank=1, row=2),
                      SPEC.clock_ps // 2)

    @pytest.mark.sanitizer_exempt
    def test_record_mode_counts_instead_of_raising(self):
        bus = make_bus(raise_on_collision=False)
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), 0)
        bus.issue("nvmc", Command(CommandKind.ACT, bank=1, row=2), 100)
        assert bus.collision_count == 1
        assert bus.collisions[0].bus == "CA"


class TestDQCollisions:
    @pytest.mark.sanitizer_exempt
    def test_read_data_windows_collide(self):
        """Two masters' read bursts landing together on DQ."""
        bus = make_bus(raise_on_collision=False)
        t = 0
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), t)
        bus.issue("nvmc", Command(CommandKind.ACT, bank=1, row=1),
                  t + SPEC.clock_ps)
        t_rd = t + SPEC.trcd_ps + SPEC.clock_ps
        bus.issue("imc", Command(CommandKind.RD, bank=0, row=1, column=0),
                  t_rd)
        # NVMC read lands 2 clocks later: CA slots are distinct but the
        # tCL-delayed DQ bursts overlap.
        bus.issue("nvmc", Command(CommandKind.RD, bank=1, row=1, column=0),
                  t_rd + 2 * SPEC.clock_ps)
        dq = [c for c in bus.collisions if c.bus == "DQ"]
        assert len(dq) == 1

    def test_spaced_reads_do_not_collide_on_dq(self):
        bus = make_bus()
        t = 0
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=1), t)
        bus.issue("nvmc", Command(CommandKind.ACT, bank=1, row=1),
                  t + SPEC.clock_ps)
        t_rd = t + SPEC.trcd_ps + SPEC.clock_ps
        bus.issue("imc", Command(CommandKind.RD, bank=0, row=1, column=0),
                  t_rd)
        bus.issue("nvmc", Command(CommandKind.RD, bank=1, row=1, column=0),
                  t_rd + SPEC.burst_time_ps + SPEC.clock_ps)
        assert bus.collision_count == 0


class TestRowClosedUnderReader:
    def test_fig2a_c2_precharge_invalidates_read(self):
        """Fig. 2a C2: iMC precharges the row the NVMC is bursting on."""
        bus = make_bus()
        t = 0
        bus.issue("nvmc", Command(CommandKind.ACT, bank=0, row=7), t)
        # iMC closes the bank (believes it owns it) after tRAS.
        bus.issue("imc", Command(CommandKind.PRE, bank=0), t + SPEC.tras_ps)
        # NVMC's subsequent read hits a precharged bank: protocol error.
        with pytest.raises(ProtocolError, match="precharged bank"):
            bus.issue("nvmc", Command(CommandKind.RD, bank=0, row=7,
                                      column=0),
                      t + SPEC.tras_ps + 2 * SPEC.clock_ps)


class TestSnooping:
    def test_snooper_sees_every_command(self):
        bus = make_bus()
        seen = []
        bus.add_snooper(lambda t, state: seen.append((t, state)))
        bus.issue("imc", Command(CommandKind.PREA), 0)
        bus.issue("imc", Command(CommandKind.REF), SPEC.trp_ps)
        assert len(seen) == 2
        from repro.ddr.commands import is_refresh_state
        assert not is_refresh_state(seen[0][1])
        assert is_refresh_state(seen[1][1])

    def test_commands_issued_counter(self):
        bus = make_bus()
        bus.issue("imc", Command(CommandKind.PREA), 0)
        assert bus.commands_issued == 1


class TestPruning:
    def test_old_reservations_are_pruned(self):
        bus = make_bus()
        bus.issue("imc", Command(CommandKind.PREA), 0)
        # Far in the future, old CA reservations should be dropped.
        bus.issue("imc", Command(CommandKind.PREA),
                  SharedBus.PRUNE_HORIZON_PS * 3)
        assert len(bus._ca) == 1


class TestExtendedTrfcSpec:
    def test_bus_accepts_nvdimmc_spec(self):
        bus = make_bus(spec=NVDIMMC_1600)
        bus.issue("imc", Command(CommandKind.REF), 0)
        # Device refresh completes after the JEDEC time, not the
        # programmed time: the gap is the NVMC's window.
        bus.device.maybe_complete_refresh(NVDIMMC_1600.trfc_device_ps)
        from repro.ddr.bank import BankState
        assert bus.device.banks[0].state is BankState.IDLE
