"""Protocol-level self-refresh behaviour.

SRE shares the REFRESH pin state with CKE falling; a detector that
armed a transfer on SRE would drive the bus during an *unbounded*
blackout — and conversely SRX must not look like anything actionable.
These tests run the full bus + detector + agent chain through a
self-refresh episode.
"""

from repro.ddr.bus import SharedBus
from repro.ddr.commands import Command, CommandKind
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.units import mb, us

SPEC = NVDIMMC_1600


def make_bus_with_agent():
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device)
    agent = NVMCProtocolAgent(SPEC, bus)
    return device, bus, agent


class TestSelfRefreshEpisode:
    def test_sre_does_not_trigger_agent_transfer(self):
        device, bus, agent = make_bus_with_agent()
        agent.queue_write(0, bytes(4096))
        t = 0
        bus.issue("imc", Command(CommandKind.PREA), t)
        bus.issue("imc", Command(CommandKind.SRE), t + SPEC.trp_ps)
        # Long self-refresh: the agent must stay off the bus.
        assert agent.backlog == 1
        assert agent.detector.detections == []
        assert device.in_self_refresh

    def test_work_resumes_after_srx_and_a_real_refresh(self):
        device, bus, agent = make_bus_with_agent()
        agent.queue_write(0, b"\xaa" * 4096)
        t = 0
        bus.issue("imc", Command(CommandKind.PREA), t)
        t += SPEC.trp_ps
        bus.issue("imc", Command(CommandKind.SRE), t)
        t += us(100)                       # park in self-refresh
        bus.issue("imc", Command(CommandKind.SRX), t)
        t += us(1)
        bus.issue("imc", Command(CommandKind.REF), t)
        # The real REF arms the window; the transfer lands inside it.
        assert agent.backlog == 0
        assert device.peek(0, 4) == b"\xaa" * 4
        assert len(agent.detector.detections) == 1
        assert agent.detector.false_positives == 0

    def test_srx_alone_is_not_a_window(self):
        _device, bus, agent = make_bus_with_agent()
        agent.queue_write(0, bytes(4096))
        bus.issue("imc", Command(CommandKind.PREA), 0)
        bus.issue("imc", Command(CommandKind.SRE), SPEC.trp_ps)
        bus.issue("imc", Command(CommandKind.SRX), us(50))
        assert agent.backlog == 1          # still waiting for a REF
