"""Tests for analysis (stats, results, tables) and the sim tracer."""

import warnings

import pytest
from hypothesis import given, strategies as st

from repro.analysis.results import Comparison, ExperimentRecord
from repro.analysis.stats import LatencyAccumulator, summarize
from repro.analysis.tables import render_series, render_table
from repro.sim.trace import NULL_TRACER, Tracer


class TestLatencyAccumulator:
    def test_mean(self):
        acc = LatencyAccumulator()
        for v in (1_000_000, 2_000_000, 3_000_000):
            acc.record(v)
        assert acc.mean_us == pytest.approx(2.0)
        assert acc.count == 3

    def test_percentiles(self):
        acc = LatencyAccumulator()
        for v in range(1, 101):
            acc.record(v * 1000)
        assert acc.percentile_ps(50) == 50_000
        assert acc.percentile_ps(99) == 99_000
        assert acc.percentile_ps(100) == 100_000

    def test_percentile_bounds(self):
        acc = LatencyAccumulator()
        acc.record(1)
        with pytest.raises(ValueError):
            acc.percentile_ps(0)
        with pytest.raises(ValueError):
            acc.percentile_ps(101)

    def test_empty_accumulator(self):
        acc = LatencyAccumulator()
        assert acc.mean_ps == 0.0
        assert acc.percentile_ps(50) == 0
        assert acc.min_ps == 0 and acc.max_ps == 0

    def test_record_after_query_resorts(self):
        acc = LatencyAccumulator()
        acc.record(10)
        assert acc.max_ps == 10
        acc.record(5)
        assert acc.min_ps == 5

    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=200))
    def test_summary_invariants(self, samples):
        acc = LatencyAccumulator()
        for s in samples:
            acc.record(s)
        summary = summarize(acc)
        assert summary.min_us <= summary.p50_us <= summary.p99_us
        assert summary.p99_us <= summary.max_us
        assert summary.min_us <= summary.mean_us <= summary.max_us


class TestExperimentRecord:
    def test_ratio(self):
        c = Comparison("x", "MB/s", paper=100.0, measured=110.0)
        assert c.ratio == pytest.approx(1.1)

    def test_ratio_none_without_paper(self):
        assert Comparison("x", "u", None, 5.0).ratio is None
        assert Comparison("x", "u", 0.0, 5.0).ratio is None

    def test_record_accumulates_and_renders(self):
        record = ExperimentRecord("figX", "demo")
        record.add("a", "MB/s", 100, 101)
        record.add("b", "count", None, 3)
        record.note("hello")
        text = str(record)
        assert "figX" in text and "hello" in text and "x1.01" in text

    def test_worst_ratio_error(self):
        record = ExperimentRecord("figX", "demo")
        record.add("good", "u", 100, 100)
        record.add("off", "u", 100, 200)
        import math
        assert record.worst_ratio_error() == pytest.approx(math.log(2))

    def test_to_json(self):
        record = ExperimentRecord("figX", "demo")
        record.add("a", "u", 1, 2)
        import json
        parsed = json.loads(record.to_json())
        assert parsed["experiment_id"] == "figX"


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "v"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]

    def test_render_series(self):
        text = render_series("s", ["x1", "x2"], [1.0, 2.0])
        assert text.startswith("# s")
        assert "x2" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[0.1234], [12.3], [1234.5], [0]])
        assert "0.123" in text
        assert "12.3" in text
        assert "1234" in text


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(0, "cat", "msg")
        assert len(tracer) == 0

    def test_enabled_collects(self):
        tracer = Tracer(enabled=True)
        tracer.emit(100, "ddr.cmd", "ACT", bank=3)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.fields["bank"] == 3
        assert "ddr.cmd" in str(record)

    def test_category_filter(self):
        tracer = Tracer(enabled=True, categories=("ddr.",))
        tracer.emit(0, "ddr.cmd", "a")
        tracer.emit(0, "nvmc.window", "b")
        assert len(tracer) == 1
        assert tracer.filter("ddr")[0].message == "a"

    def test_capacity_drops(self):
        tracer = Tracer(enabled=True, capacity=2)
        tracer.emit(0, "c", "m")
        tracer.emit(1, "c", "m")
        # The first drop warns once; further drops stay silent.
        with pytest.warns(RuntimeWarning, match="capacity"):
            tracer.emit(2, "c", "m")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for i in (3, 4):
                tracer.emit(i, "c", "m")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert "3 dropped" in tracer.summary()

    def test_subscribers_observe_past_capacity(self):
        tracer = Tracer(enabled=True, capacity=1)
        seen = []
        tracer.subscribe(seen.append)
        with pytest.warns(RuntimeWarning):
            for i in range(3):
                tracer.emit(i, "c", "m")
        assert len(tracer) == 1 and tracer.dropped == 2
        assert [r.time_ps for r in seen] == [0, 1, 2]
        tracer.unsubscribe(seen.append)
        tracer.emit(3, "c", "m")
        assert len(seen) == 3

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit(0, "c", "m")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_null_tracer_is_off(self):
        assert not NULL_TRACER.enabled
