"""Fleet determinism: byte-identical reports, hash-seed independence.

The acceptance gates of the fleet subsystem: a run is a pure function
of its config — repeated runs and serial-vs-parallel runs render
byte-identical ``FLEET_*.json`` bodies — and nothing in the planning
pipeline leans on ``hash()``, so reports are identical across
``PYTHONHASHSEED`` values (the property that broke the experiment
runner once; see ``workloads/tpch.py``).
"""

import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

import repro

from repro.fleet.frontend import run_fleet
from repro.fleet.placement import ZipfSampler
from repro.fleet.report import render_report

CONFIG = dict(quick=True, shards=2, requests=2000, seed=11)


def test_repeated_runs_render_byte_identical_reports():
    first = render_report(run_fleet(**CONFIG))
    second = render_report(run_fleet(**CONFIG))
    assert first == second


def test_parallel_run_matches_serial_byte_for_byte():
    serial = render_report(run_fleet(**CONFIG, jobs=1))
    parallel = render_report(run_fleet(**CONFIG, jobs=2))
    assert serial == parallel


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=500),
       theta=st.floats(min_value=0.0, max_value=3.0,
                       allow_nan=False, allow_infinity=False),
       seed=st.integers(min_value=0, max_value=2**31))
def test_zipf_sampler_is_seed_deterministic(n, theta, seed):
    a = ZipfSampler(n=n, theta=theta, seed=seed)
    b = ZipfSampler(n=n, theta=theta, seed=seed)
    draws = [a.sample() for _ in range(40)]
    assert draws == [b.sample() for _ in range(40)]
    assert all(0 <= draw < n for draw in draws)


_PLAN_DIGEST_SNIPPET = """
import zlib
from repro.fleet.frontend import Fleet, FleetConfig

fleet = Fleet(FleetConfig(quick=True, shards=3, requests=4000, seed=5,
                          placement={placement!r}))
digest = 0
for plan in fleet.plan(service_est_ps=40_000_000):
    for req in plan.requests:
        line = (f"{{plan.shard}}:{{req.seq}}:{{req.tenant}}:"
                f"{{req.arrival_ps}}:{{req.key}}:{{req.write}}:"
                f"{{req.version}}")
        digest = zlib.crc32(line.encode(), digest)
print(digest)
"""


def _plan_digest(placement: str, hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, "-c",
         _PLAN_DIGEST_SNIPPET.format(placement=placement)],
        capture_output=True, text=True, env=env, check=True)
    return result.stdout.strip()


def test_planning_is_hash_seed_independent():
    for placement in ("round_robin", "capacity_weighted",
                      "tenant_pinned"):
        digests = {_plan_digest(placement, hashseed)
                   for hashseed in ("0", "12345")}
        assert len(digests) == 1, placement
