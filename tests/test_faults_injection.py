"""Tests for the injection hook points and the resilience they drive.

Each fault class is exercised at two levels where practical: the layer
that absorbs it (CP area, NAND controller, refresh detector) and the
end-to-end block path through :class:`NvdcDriver`, asserting both the
recovery *and* the stats trail the campaign report is built from.
"""

import pytest

from repro.ddr.commands import CommandKind, encode
from repro.device.nvdimmc import NVDIMMCSystem
from repro.errors import (CPTimeoutError, DegradedModeError, MediaError,
                          UncorrectableError)
from repro.nand.controller import NANDController
from repro.nand.spec import ZNANDSpec
from repro.nvmc.cp import CPAck, CPArea, CPCommand, Opcode, Phase
from repro.nvmc.nvmc import CPFaultPort
from repro.nvmc.refresh_detector import RefreshDetector
from repro.units import PAGE_4K, kb, mb, us


def make_system(**kwargs):
    kwargs.setdefault("cache_bytes", kb(512))
    kwargs.setdefault("device_bytes", mb(8))
    kwargs.setdefault("with_cpu_cache", True)
    return NVDIMMCSystem(**kwargs)


def make_controller(**kwargs):
    spec = ZNANDSpec(
        name="test", capacity_bytes=64 * 16 * kb(4),
        page_bytes=kb(4), pages_per_block=16, planes_per_die=1,
        dies=1, initial_bad_block_ppm=0)
    return NANDController(spec, logical_capacity_bytes=24 * 16 * kb(4),
                          channels=2, dies_total=4, **kwargs)


PAGE = bytes(range(256)) * 16


def arm_port(system):
    port = CPFaultPort()
    system.nvmc.faults = port
    return port


class TestCPCorruption:
    def test_phase_corruption_times_out_and_recovers(self):
        system = make_system()
        port = arm_port(system)
        port.corrupt_command("phase")
        data, _ = system.driver.read_page(0, round(us(1)))
        assert data == bytes(PAGE_4K)       # unwritten page: zeros
        stats = system.driver.stats
        assert port.commands_corrupted == 1
        assert stats.cp_timeouts == 1       # stale word: no ack ever
        assert stats.cp_retries == 1        # one re-issue completed it
        assert stats.cachefills == 1

    def test_opcode_corruption_decode_error_reissues(self):
        system = make_system()
        port = arm_port(system)
        port.corrupt_command("opcode")
        data, _ = system.driver.read_page(0, round(us(1)))
        assert data == bytes(PAGE_4K)
        stats = system.driver.stats
        assert stats.cp_timeouts == 0       # DECODE_ERROR acks promptly
        assert stats.cp_retries == 1

    def test_persistent_corruption_exhausts_retries(self):
        system = make_system()
        port = arm_port(system)
        for _ in range(8):                  # outlast every re-issue
            port.corrupt_command("phase")
        with pytest.raises(CPTimeoutError) as exc:
            system.driver.read_page(0, round(us(1)))
        assert exc.value.attempts == 1 + system.driver.calibration.\
            cp_max_retries

    def test_ack_drop_reissues_idempotently(self):
        system = make_system()
        port = arm_port(system)
        port.drop_ack()
        data, _ = system.driver.read_page(0, round(us(1)))
        assert data == bytes(PAGE_4K)
        stats = system.driver.stats
        assert port.acks_dropped == 1
        assert stats.cp_timeouts == 1
        assert stats.cp_retries == 1
        # The device performed the operation on both attempts.
        assert stats.cachefills == 1

    def test_faulted_write_path_round_trips_data(self):
        """Corruption mid-eviction traffic must not corrupt any page."""
        system = make_system()
        port = arm_port(system)
        slots = system.region.num_slots
        port.corrupt_command("phase", after=1)
        port.drop_ack(after=2)
        t = round(us(1))
        shadow = {}
        for page in range(slots + 8):       # force evictions + fills
            data = bytes([page % 256]) * PAGE_4K
            t = system.driver.write_page(page, data, t)
            shadow[page] = data
        assert port.exhausted
        for page, expect in shadow.items():
            got, t = system.driver.read_page(page, t)
            assert got == expect, f"page {page} corrupted"


class TestAckABAHazard:
    def test_clear_ack_poisons_stale_ack(self):
        """The 1-bit phase means ack(N-1) looks like ack(N+1); the
        driver must be able to poison the ack word before re-posting."""
        area = CPArea()
        area.post(0, CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL))
        area.ack(0, CPAck(phase=Phase.ODD))
        assert area.poll_ack(0, Phase.ODD) is not None
        area.clear_ack(0)
        assert area.poll_ack(0, Phase.ODD) is None


class TestDMAPartialTransfers:
    def test_shortfall_spills_into_next_window(self):
        system = make_system()
        port = arm_port(system)
        port.shorten_dma(2048)
        data, _ = system.driver.read_page(0, round(us(1)))
        assert data == bytes(PAGE_4K)
        assert port.dma_shortfalls_applied == 1
        assert system.nvmc.dma.stats.partial_transfers == 1

    def test_full_transfer_has_no_partials(self):
        system = make_system()
        system.driver.read_page(0, round(us(1)))
        assert system.nvmc.dma.stats.partial_transfers == 0


class TestNANDResilience:
    def test_program_failure_remaps_and_round_trips(self):
        nand = make_controller()
        nand.dies[0].inject_program_failures(1)
        nand.program_page(3, PAGE, 0)
        assert nand.dies[0].injected_program_failures == 1
        assert nand.ftl.stats.program_retries == 1
        assert nand.ftl.stats.grown_bad_blocks == 1
        data, _ = nand.read_page(3, 0)
        assert data == PAGE

    def test_read_retry_recovers_within_budget(self):
        nand = make_controller()
        nand.program_page(5, PAGE, 0)
        nand.codec.inject_uncorrectable(2)
        data, _ = nand.read_page(5, 0)
        assert data == PAGE
        assert nand.stats.read_retries == 2
        assert nand.stats.unrecovered_reads == 0

    def test_read_retries_cost_extra_time(self):
        nand = make_controller()
        nand.program_page(5, PAGE, 0)
        _, clean_end = nand.read_page(5, 0)
        nand.codec.inject_uncorrectable(1)
        _, retried_end = nand.read_page(5, clean_end)
        assert retried_end - clean_end > clean_end    # ~2x one read

    def test_unrecoverable_read_raises_after_budget(self):
        nand = make_controller()
        nand.program_page(5, PAGE, 0)
        nand.codec.inject_uncorrectable(1 + nand.read_retry_limit)
        with pytest.raises(UncorrectableError):
            nand.read_page(5, 0)
        assert nand.stats.unrecovered_reads == 1

    def test_degraded_mode_after_bad_block_budget(self):
        nand = make_controller(degraded_bad_block_limit=1)
        nand.dies[0].inject_program_failures(1)
        nand.program_page(0, PAGE, 0)       # remapped; limit reached
        assert nand.read_only
        with pytest.raises(DegradedModeError):
            nand.program_page(1, PAGE, 0)
        # Reads still work, and the drain's preload backdoor stays open.
        data, _ = nand.read_page(0, 0)
        assert data == PAGE
        nand.preload(2, PAGE)

    def test_media_error_surfaces_through_driver(self):
        system = make_system()
        t = round(us(1))
        slots = system.region.num_slots
        # Push one page to NAND by writing past the cache capacity.
        for page in range(slots + 1):
            t = system.driver.write_page(page, PAGE, t)
        system.nand.codec.inject_uncorrectable(
            1 + system.nand.read_retry_limit)
        with pytest.raises(MediaError):
            system.driver.read_page(0, t)
        assert system.driver.stats.media_errors == 1


class TestDetectorNoiseBursts:
    def test_burst_forces_slow_path_and_still_detects(self):
        detector = RefreshDetector(seed=3)
        detector.inject_noise_burst(500, 1500, ber=0.001)
        detector.observe(1000, encode(CommandKind.REF))
        assert detector.burst_commands == 1
        assert len(detector.detections) == 1

    def test_outside_burst_keeps_fast_path(self):
        detector = RefreshDetector(seed=3)
        detector.inject_noise_burst(500, 1500, ber=0.25)
        detector.observe(2000, encode(CommandKind.REF))
        assert detector.burst_commands == 0
        assert len(detector.detections) == 1

    def test_overlapping_bursts_use_worst_ber(self):
        detector = RefreshDetector(seed=3)
        detector.inject_noise_burst(0, 1000, ber=0.001)
        detector.inject_noise_burst(500, 1500, ber=0.002)
        assert detector._burst_ber(750) == 0.002
