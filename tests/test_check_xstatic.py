"""The whole-program static pass (``repro.check.xstatic``).

Three layers of coverage:

* golden fixture snippets — one positive and one negative twin per
  rule REPRO006–REPRO013, analyzed in isolated temporary trees;
* the real tree — the registry must account for every FaultClock hook
  site and every sanitizer-expected event, and every finding must be a
  justified entry in the committed baseline (the deliberately
  process-wide meters documented in ``repro.sim.snapshot``);
* the CLI — ``--format json``, ``--baseline`` write/compare semantics,
  ``# noqa`` scoping, and the committed ``docs/hook_registry.md``
  staying in sync with the extractor.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.cli import main as check_main
from repro.check.xstatic import (BASELINE_SCHEMA, REPORT_SCHEMA,
                                 analyze_tree, load_baseline,
                                 render_baseline, render_registry_markdown,
                                 split_by_baseline)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"

#: A hook-site visit that marks the enclosing module crash-exposed.
HOOK_LINE = 'self.fault_clock.check(0, "dev.op")\n'


def _analyze(tmp_path: Path, files: dict[str, str]):
    """Write a fixture package tree and run the pass over it."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return analyze_tree(root)


def _codes(report) -> list[str]:
    return [f.code for f in report.findings]


# -- REPRO006: finally-cleared journal state on crash-exposed paths ---------------


REPRO006_POSITIVE = """\
class Driver:
    def writeback(self):
        self.fault_clock.check(0, "dev.op")
        self.inflight_journal = (1, 2)
        try:
            self.issue()
        except MediaError:
            raise
        finally:
            self.inflight_journal = None
"""


def test_repro006_flags_unguarded_finally_clear(tmp_path):
    report = _analyze(tmp_path, {"sim/driver.py": REPRO006_POSITIVE})
    assert _codes(report) == ["REPRO006"]
    assert "inflight_journal" in report.findings[0].message


def test_repro006_negative_rollback_handler(tmp_path):
    guarded = REPRO006_POSITIVE.replace(
        "except MediaError:",
        "except (MediaError, PowerLossInterrupt):")
    report = _analyze(tmp_path, {"sim/driver.py": guarded})
    assert _codes(report) == []


def test_repro006_negative_unexposed_module(tmp_path):
    # The same finally-clear in a module no power cut can reach is fine.
    source = REPRO006_POSITIVE.replace(HOOK_LINE.strip(), "pass")
    report = _analyze(tmp_path, {"sim/driver.py": source})
    assert _codes(report) == []


def test_repro006_exposure_propagates_over_imports(tmp_path):
    # devmod has the hook site; driver imports it, so a cut can unwind
    # through driver's frames: its finally-clear is flagged.
    driver = ("from repro.sim.devmod import issue\n\n\n"
              + REPRO006_POSITIVE.replace(
                  "        " + HOOK_LINE.strip() + "\n", ""))
    report = _analyze(tmp_path, {
        "sim/devmod.py": ("class Dev:\n    def issue(self):\n        "
                          + HOOK_LINE),
        "sim/driver.py": driver,
    })
    assert _codes(report) == ["REPRO006"]
    assert report.findings[0].path == "sim/driver.py"


# -- REPRO007: mutation between program and its OOB stamp -------------------------


REPRO007_POSITIVE = """\
class FTL:
    def append(self, lpn, data, stamp):
        self.fault_clock.tick("ftl.program")
        self.die.program(data)
        self.l2p_map[lpn] = 7
        self.die.write_oob(stamp)
"""


def test_repro007_flags_mutation_in_program_stamp_gap(tmp_path):
    report = _analyze(tmp_path, {"nand/ftl.py": REPRO007_POSITIVE})
    assert _codes(report) == ["REPRO007"]
    assert "l2p_map" in report.findings[0].message


def test_repro007_negative_inline_oob_stamp(tmp_path):
    atomic = REPRO007_POSITIVE.replace(
        "self.die.program(data)", "self.die.program(data, oob=stamp)")
    report = _analyze(tmp_path, {"nand/ftl.py": atomic})
    assert _codes(report) == []


# -- REPRO008: unordered iteration feeding trace/schedule -------------------------


REPRO008_POSITIVE = """\
class Scrubber:
    def __init__(self):
        self._dirty = set()

    def flush(self, engine):
        for page in self._dirty:
            engine.call_at(0, page)
"""


def test_repro008_flags_set_iteration_feeding_scheduler(tmp_path):
    report = _analyze(tmp_path, {"sim/scrub.py": REPRO008_POSITIVE})
    assert _codes(report) == ["REPRO008"]


def test_repro008_flags_local_set_feeding_emit(tmp_path):
    source = """\
def run(tracer):
    pending = set()
    for page in pending:
        tracer.emit(0, "x.page", "seen", page=page)
"""
    report = _analyze(tmp_path, {"sim/run.py": source})
    assert _codes(report) == ["REPRO008"]


def test_repro008_negative_sorted_iteration(tmp_path):
    source = REPRO008_POSITIVE.replace("in self._dirty",
                                       "in sorted(self._dirty)")
    report = _analyze(tmp_path, {"sim/scrub.py": source})
    assert _codes(report) == []


# -- REPRO009: id() as an ordering key --------------------------------------------


def test_repro009_flags_id_sort_key(tmp_path):
    source = "def order(items):\n    return sorted(items, key=id)\n"
    report = _analyze(tmp_path, {"sim/order.py": source})
    assert _codes(report) == ["REPRO009"]


def test_repro009_flags_id_mapping_key(tmp_path):
    source = ("class T:\n    def note(self, obj):\n"
              "        self.seen[id(obj)] = True\n")
    report = _analyze(tmp_path, {"sim/note.py": source})
    assert _codes(report) == ["REPRO009"]


def test_repro009_negative_stable_field_key(tmp_path):
    source = ("def order(items):\n"
              "    return sorted(items, key=lambda item: item.lpn)\n")
    report = _analyze(tmp_path, {"sim/order.py": source})
    assert _codes(report) == []


# -- REPRO010: unpinned report serialisation --------------------------------------


def test_repro010_flags_unsorted_json_dump(tmp_path):
    source = ("import json\n\n\ndef render(payload):\n"
              "    return json.dumps(payload, indent=2)\n")
    report = _analyze(tmp_path, {"faults/report.py": source})
    assert _codes(report) == ["REPRO010"]


def test_repro010_negative_sorted_keys(tmp_path):
    source = ("import json\n\n\ndef render(payload):\n"
              "    return json.dumps(payload, indent=2, sort_keys=True)\n")
    report = _analyze(tmp_path, {"faults/report.py": source})
    assert _codes(report) == []


def test_repro010_noqa_suppression(tmp_path):
    source = ("import json\n\n\ndef render(payload):\n"
              "    return json.dumps(payload)  # noqa: REPRO010\n")
    report = _analyze(tmp_path, {"faults/report.py": source})
    assert _codes(report) == []


# -- REPRO011/REPRO012: registry cross-checks -------------------------------------


def test_repro011_flags_sanitizer_expecting_unknown_event(tmp_path):
    report = _analyze(tmp_path, {
        "sim/model.py": ('def go(self):\n'
                         '    self.tracer.emit(0, "real.event", "ok")\n'),
        "check/sanitizers.py": (
            "def observe(record):\n"
            '    if record.category == "typo.event":\n'
            "        pass\n"),
    })
    assert _codes(report) == ["REPRO011"]
    assert "typo.event" in report.findings[0].message


def test_repro011_negative_matching_producer(tmp_path):
    report = _analyze(tmp_path, {
        "sim/model.py": ('def go(self):\n'
                         '    self.tracer.emit(0, "real.event", "ok")\n'),
        "check/sanitizers.py": (
            "def observe(record):\n"
            '    if record.category == "real.event":\n'
            "        pass\n"),
    })
    assert _codes(report) == []


def test_repro012_flags_cut_targeting_unknown_site(tmp_path):
    report = _analyze(tmp_path, {
        "sim/dev.py": "class D:\n    def op(self):\n        " + HOOK_LINE,
        "faults/arm.py": ('def arm(clock):\n'
                          '    clock.cut_on_visit(3, site="nope.site")\n'),
    })
    assert _codes(report) == ["REPRO012"]


def test_repro012_negative_prefix_match(tmp_path):
    # Cut filters match by prefix, exactly like _Cut.matches_site.
    report = _analyze(tmp_path, {
        "sim/dev.py": "class D:\n    def op(self):\n        " + HOOK_LINE,
        "faults/arm.py": ('def arm(clock):\n'
                          '    clock.cut_on_visit(3, site="dev")\n'),
    })
    assert _codes(report) == []


# -- REPRO013: state outside the snapshot graph -----------------------------------


REPRO013_POSITIVE = """\
import itertools


class Model:
    def snapshot(self):
        return dict(self.state)

    def restore(self, blob):
        self.state = dict(blob)


_TOKEN_MILL = itertools.count()
"""


def test_repro013_flags_uncaptured_module_counter(tmp_path):
    report = _analyze(tmp_path, {"sim/model.py": REPRO013_POSITIVE})
    assert _codes(report) == ["REPRO013"]
    assert "_TOKEN_MILL" in report.findings[0].message


def test_repro013_negative_module_without_snapshot_support(tmp_path):
    # The same counter in a module with no snapshot surface is fine.
    source = REPRO013_POSITIVE.replace("def snapshot", "def dump").replace(
        "def restore", "def load")
    report = _analyze(tmp_path, {"sim/model.py": source})
    assert _codes(report) == []


def test_repro013_negative_counter_covered_by_snapshot_body(tmp_path):
    covered = REPRO013_POSITIVE.replace(
        "return dict(self.state)",
        "return (dict(self.state), next(_TOKEN_MILL))")
    report = _analyze(tmp_path, {"sim/model.py": covered})
    assert _codes(report) == []


def test_repro013_flags_class_level_counter_mutation(tmp_path):
    source = """\
class Engine(SnapshotMixin):
    total_events = 0

    def step(self):
        Engine.total_events += 1
"""
    report = _analyze(tmp_path, {"sim/engine.py": source})
    assert _codes(report) == ["REPRO013"]
    assert "Engine.total_events" in report.findings[0].message


def test_repro013_flags_global_rebind(tmp_path):
    source = """\
_CURRENT = None


class Model(SnapshotMixin):
    def use(self, value):
        global _CURRENT
        _CURRENT = value
"""
    report = _analyze(tmp_path, {"sim/model.py": source})
    assert _codes(report) == ["REPRO013"]
    assert "_CURRENT" in report.findings[0].message


def test_repro013_negative_immutable_module_constant(tmp_path):
    source = REPRO013_POSITIVE.replace(
        "_TOKEN_MILL = itertools.count()", "_LIMIT = 42")
    report = _analyze(tmp_path, {"sim/model.py": source})
    assert _codes(report) == []


# -- the real tree ----------------------------------------------------------------


@pytest.fixture(scope="module")
def tree_report():
    assert SRC_TREE.is_dir()
    return analyze_tree(SRC_TREE)


def test_real_tree_findings_are_all_baselined(tree_report):
    # The only tolerated findings are the REPRO013 entries for the
    # deliberately process-wide meters (documented in repro.sim.snapshot);
    # each one is pinned in the committed baseline, and nothing else is.
    fingerprints = load_baseline(REPO_ROOT / "baselines" / "static.json")
    assert all(f.code == "REPRO013" for f in tree_report.findings)
    assert {f.fingerprint for f in tree_report.findings} == fingerprints


def test_registry_accounts_for_every_fault_clock_hook_site(tree_report):
    registry = tree_report.registry
    assert set(registry.hook_producers) == {
        "engine", "ftl.gc", "ftl.program", "nvmc.cachefill.read",
        "nvmc.writeback.program", "power.drain"}
    assert set(registry.hook_producer_prefixes) == {"nvmc.dma."}


def test_every_cut_site_resolves_against_the_registry(tree_report):
    registry = tree_report.registry
    assert set(registry.hook_consumers) == {
        "nvmc", "nvmc.dma", "nvmc.writeback.program", "power.drain"}
    for site in registry.hook_consumers:
        assert registry.hook_site_resolves(site), site


def test_every_sanitizer_expected_event_resolves(tree_report):
    registry = tree_report.registry
    # The full expected-event surface of the five-sanitizer suite.
    assert set(registry.trace_consumers) >= {
        "power.drain", "ddr.collision", "ddr.cmd", "nvdc.attach",
        "nvdc.dirty", "nvdc.flush", "nvdc.sfence", "nvdc.invalidate",
        "nvmc.dma", "cp.post", "cp.ack", "cp.abandon", "health.scrub",
        "imc.refresh"}
    for name in registry.trace_consumers:
        assert registry.trace_event_resolves(name), name


def test_registry_pins_report_schemas(tree_report):
    assert set(tree_report.registry.schemas) >= {
        "repro.faults/1", "repro.soak/1", "repro.recovery/1"}


def test_committed_hook_registry_doc_is_current(tree_report):
    committed = (REPO_ROOT / "docs" / "hook_registry.md").read_text(
        encoding="utf-8")
    assert committed == render_registry_markdown(tree_report.registry)


def test_committed_baseline_holds_only_justified_meters():
    fingerprints = load_baseline(REPO_ROOT / "baselines" / "static.json")
    assert all("REPRO013" in f for f in fingerprints)
    named = {"total_events_executed", "_DEFAULT_TRACER", "_OWNER_COUNTER"}
    assert named == {name for name in named
                     for f in fingerprints if name in f}


# -- baseline mechanics -----------------------------------------------------------


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    report = _analyze(tmp_path, {
        "faults/report.py": ("import json\n\n\ndef render(payload):\n"
                             "    return json.dumps(payload)\n")})
    assert len(report.findings) == 1
    baseline = tmp_path / "static.json"
    baseline.write_text(render_baseline(report), encoding="utf-8")
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["schema"] == BASELINE_SCHEMA
    new, baselined = split_by_baseline(report, load_baseline(baseline))
    assert new == [] and len(baselined) == 1


def test_baseline_fingerprint_survives_line_churn(tmp_path):
    source = ("import json\n\n\ndef render(payload):\n"
              "    return json.dumps(payload)\n")
    first = _analyze(tmp_path, {"faults/report.py": source})
    shifted = _analyze(tmp_path, {
        "faults/report.py": "# a new leading comment\n" + source})
    assert (first.findings[0].fingerprint
            == shifted.findings[0].fingerprint)
    assert first.findings[0].line != shifted.findings[0].line


# -- CLI --------------------------------------------------------------------------


def _fixture_root(tmp_path: Path) -> Path:
    root = tmp_path / "repro"
    path = root / "faults" / "report.py"
    path.parent.mkdir(parents=True)
    path.write_text("import json\n\n\ndef render(p):\n"
                    "    return json.dumps(p)\n", encoding="utf-8")
    return root


def test_cli_static_exit_codes(tmp_path, capsys):
    root = _fixture_root(tmp_path)
    assert check_main(["--static", "--root", str(root)]) == 1
    assert "REPRO010" in capsys.readouterr().out
    assert check_main(["--static", "--root", str(SRC_TREE), "--baseline",
                       str(REPO_ROOT / "baselines" / "static.json")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_static_json_format(tmp_path, capsys):
    root = _fixture_root(tmp_path)
    assert check_main(["--static", "--root", str(root),
                       "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["summary"] == {"total": 1, "baselined": 0, "new": 1}
    assert payload["findings"][0]["code"] == "REPRO010"
    assert payload["findings"][0]["baselined"] is False


def test_cli_baseline_write_then_compare(tmp_path, capsys):
    root = _fixture_root(tmp_path)
    baseline = tmp_path / "static.json"
    assert check_main(["--static", "--root", str(root),
                       "--baseline", str(baseline),
                       "--write-baseline"]) == 0
    capsys.readouterr()
    # Baselined findings no longer fail the run...
    assert check_main(["--static", "--root", str(root),
                       "--baseline", str(baseline)]) == 0
    assert "baselined finding(s) suppressed" in capsys.readouterr().out
    # ...but a fresh finding still does.
    extra = root / "faults" / "extra.py"
    extra.write_text("import json\n\n\ndef more(p):\n"
                     "    return json.dumps(p)\n", encoding="utf-8")
    assert check_main(["--static", "--root", str(root),
                       "--baseline", str(baseline)]) == 1


def test_cli_rejects_bad_baseline(tmp_path, capsys):
    root = _fixture_root(tmp_path)
    baseline = tmp_path / "bad.json"
    baseline.write_text('{"schema": "wrong"}', encoding="utf-8")
    assert check_main(["--static", "--root", str(root),
                       "--baseline", str(baseline)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_cli_registry_out_writes_markdown(tmp_path, capsys):
    out = tmp_path / "hook_registry.md"
    assert check_main(["--static", "--root", str(SRC_TREE),
                       "--baseline",
                       str(REPO_ROOT / "baselines" / "static.json"),
                       "--registry-out", str(out)]) == 0
    capsys.readouterr()
    assert out.read_text(encoding="utf-8").startswith(
        "# Hook-site and trace-event registry")


def test_cli_requires_static_or_subcommand(capsys):
    assert check_main([]) == 2
    assert "--static" in capsys.readouterr().err


def test_top_level_cli_integration(capsys):
    from repro.cli import main as repro_main
    assert repro_main(["check", "--static", "--root", str(SRC_TREE),
                       "--baseline",
                       str(REPO_ROOT / "baselines" / "static.json")]) == 0
    assert "clean" in capsys.readouterr().out


# -- regression tests for the true positives this pass found ----------------------


def test_export_to_json_is_key_sorted():
    from repro.analysis.export import to_json
    from repro.analysis.results import ExperimentRecord
    record = ExperimentRecord("fig8", "latency")
    record.add("read", "ns", 1.0, 2.0)
    text = to_json([record])
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True)


def test_experiment_record_to_json_is_key_sorted():
    from repro.analysis.results import ExperimentRecord
    record = ExperimentRecord("fig8", "latency")
    record.add("read", "ns", 1.0, 2.0)
    text = record.to_json()
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True)


def test_write_bench_is_key_sorted(tmp_path):
    from repro.perf.bench import write_bench
    payload = {"zulu": 1, "alpha": 2, "schema": 1}
    path = Path(write_bench(payload, str(tmp_path)))
    text = path.read_text(encoding="utf-8")
    assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_coherence_finalize_order_is_hash_seed_independent():
    from repro.check.sanitizers import CoherenceSanitizer
    from repro.sim.trace import TraceRecord

    sanitizer = CoherenceSanitizer()
    for owner in ("zzz", "aaa"):
        sanitizer.observe(TraceRecord(0, "nvdc.attach", "attach",
                                      {"owner": owner, "coherent": True}))
        sanitizer.observe(TraceRecord(1, "nvmc.dma", "fill",
                                      {"owner": owner, "kind": "fill",
                                       "addr": 4096}))
    sanitizer.finalize()
    owners = [v.record.fields["owner"] for v in sanitizer.violations]
    assert owners == ["aaa", "zzz"]
