"""Tests for DDR4 speed grades and timing parameters."""

import pytest

from repro.ddr.spec import (DDR4_1600, DDR4_2400, DDR4Spec, GRADE_1600,
                            GRADE_2400, NVDIMMC_1600, TRFC_BY_DENSITY_NS)
from repro.errors import ConfigError
from repro.units import ns, us


class TestSpeedGrades:
    def test_clock_period_1600(self):
        # 1600 MT/s DDR -> 800 MHz clock -> 1.25 ns period
        assert GRADE_1600.clock_ps == 1250

    def test_clock_period_2400(self):
        # 2400 MT/s -> 1200 MHz -> 0.833 ns, rounded to ps
        assert GRADE_2400.clock_ps == 833

    def test_half_clock(self):
        assert GRADE_1600.half_clock_ps == 625


class TestTimingBudget:
    def test_read_latency_budget_2400(self):
        """§III-A: tRCD + tCL at DDR4-2400 is ~26.6 ns."""
        budget_ns = DDR4_2400.read_latency_ps / 1000
        assert budget_ns == pytest.approx(26.64, abs=0.2)

    def test_max_programmable_latency_2400(self):
        """§III-A: 5-bit registers cap each parameter at 31 clocks."""
        max_spec = DDR4Spec(grade=GRADE_2400.__class__(
            "DDR4-2400-max", 2400, cl_clk=31, trcd_clk=31, trp_clk=31))
        # 31 clocks at 0.833 ns is ~25.8 ns per parameter; the paper's
        # 51.615 ns quote is the tRCD+tCL sum.
        assert max_spec.read_latency_ps / 1000 == pytest.approx(51.6, abs=0.4)

    def test_trfc_by_density(self):
        assert TRFC_BY_DENSITY_NS["4Gb"] == 260
        assert TRFC_BY_DENSITY_NS["8Gb"] == 350


class TestNvdimmcSpec:
    def test_extended_trfc_is_1000_clocks(self):
        """§IV-A: tRFC programmed to 1000 device clocks = 1.25 us."""
        assert NVDIMMC_1600.trfc_ps == ns(1250)
        assert NVDIMMC_1600.trfc_ps == 1000 * NVDIMMC_1600.clock_ps

    def test_extra_window_is_900ns(self):
        assert NVDIMMC_1600.extra_trfc_ps == ns(900)

    def test_stock_spec_has_no_window(self):
        assert DDR4_1600.extra_trfc_ps == 0

    def test_device_trfc_is_jedec(self):
        assert NVDIMMC_1600.trfc_device_ps == ns(350)


class TestValidation:
    def test_trfc_below_device_requirement_rejected(self):
        with pytest.raises(ConfigError):
            DDR4_1600.with_extended_trfc(ns(100))

    def test_trefi_below_trfc_rejected(self):
        with pytest.raises(ConfigError):
            NVDIMMC_1600.with_trefi(ns(1000))

    def test_unknown_density_rejected(self):
        import dataclasses
        bad = dataclasses.replace(DDR4_1600, density="3Gb")
        with pytest.raises(ConfigError):
            bad.validate()

    def test_with_trefi_produces_new_spec(self):
        doubled = DDR4_1600.with_trefi(us(3.9))
        assert doubled.trefi_ps == us(3.9)
        assert DDR4_1600.trefi_ps == us(7.8)  # original untouched


class TestDerivedQuantities:
    def test_burst_bytes_x64(self):
        # BL8 on a 64-bit DIMM moves 64 B
        assert DDR4_1600.burst_bytes == 64

    def test_burst_time_is_four_clocks(self):
        assert DDR4_1600.burst_time_ps == 4 * DDR4_1600.clock_ps

    def test_total_banks(self):
        assert DDR4_1600.total_banks == 16

    def test_trcd_tcl_trp_ps(self):
        assert DDR4_1600.trcd_ps == 11 * 1250
        assert DDR4_1600.tcl_ps == 11 * 1250
        assert DDR4_1600.trp_ps == 11 * 1250
