"""Tests for the calibrated host cost model and channel contention."""

import pytest

from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.contention import MemoryChannel
from repro.perf.model import HostCostModel
from repro.units import kb, us


NVDC_TL = RefreshTimeline(NVDIMMC_1600)
PMEM_TL = RefreshTimeline(DDR4_1600)


class TestCalibrationAnchors:
    """The model must land on the paper measurements it was fit to."""

    def test_baseline_4kb_read_iops(self):
        model = HostCostModel(PMEM_TL, "pmem")
        iops = model.cached_iops(kb(4), is_write=False)
        assert iops == pytest.approx(646_000, rel=0.06)   # Fig. 8

    def test_baseline_4kb_write_iops(self):
        model = HostCostModel(PMEM_TL, "pmem")
        iops = model.cached_iops(kb(4), is_write=True)
        assert iops == pytest.approx(576_000, rel=0.06)   # Fig. 8

    def test_nvdc_cached_4kb_read_bandwidth(self):
        model = HostCostModel(NVDC_TL, "nvdc")
        bw = model.cached_bandwidth_mb_s(kb(4), is_write=False)
        assert bw == pytest.approx(1835, rel=0.06)        # Fig. 8

    def test_nvdc_cached_4kb_write_bandwidth(self):
        model = HostCostModel(NVDC_TL, "nvdc")
        bw = model.cached_bandwidth_mb_s(kb(4), is_write=True)
        assert bw == pytest.approx(1796, rel=0.06)        # Fig. 8

    def test_cached_is_70_to_76_percent_of_baseline(self):
        """§VII-B2: 24-30 % driver overhead."""
        nvdc = HostCostModel(NVDC_TL, "nvdc")
        pmem = HostCostModel(PMEM_TL, "pmem")
        ratio = (nvdc.cached_iops(kb(4), False)
                 / pmem.cached_iops(kb(4), False))
        assert 0.64 <= ratio <= 0.80

    def test_small_access_advantage(self):
        """Fig. 10: NVDC-Cached beats baseline ~1.15x at 128 B."""
        nvdc = HostCostModel(NVDC_TL, "nvdc")
        pmem = HostCostModel(PMEM_TL, "pmem")
        ratio = nvdc.cached_iops(128, False) / pmem.cached_iops(128, False)
        assert 1.05 <= ratio <= 1.30


class TestRefreshSensitivity:
    """Fig. 13: cached bandwidth vs tREFI."""

    def bw_at(self, trefi_us):
        spec = NVDIMMC_1600.with_trefi(us(trefi_us))
        model = HostCostModel(RefreshTimeline(spec), "nvdc")
        return model.cached_bandwidth_mb_s(kb(4), is_write=False)

    def test_trefi2_costs_about_8_percent(self):
        drop = 1 - self.bw_at(3.9) / self.bw_at(7.8)
        assert 0.04 <= drop <= 0.14   # paper: 8 %

    def test_trefi4_costs_about_17_percent(self):
        drop = 1 - self.bw_at(1.95) / self.bw_at(7.8)
        assert 0.12 <= drop <= 0.24   # paper: 17 %

    def test_trefi4_absolute(self):
        assert self.bw_at(1.95) == pytest.approx(1530, rel=0.08)

    def test_monotone_in_refresh_rate(self):
        assert self.bw_at(7.8) > self.bw_at(3.9) > self.bw_at(1.95)


class TestChannel:
    def test_fifo_queueing(self):
        channel = MemoryChannel()
        assert channel.serve(0, 100) == 100
        assert channel.serve(0, 100) == 200   # queued behind the first
        assert channel.serve(500, 100) == 600  # idle gap, no queue

    def test_serve_split_latency_vs_occupancy(self):
        channel = MemoryChannel()
        done = channel.serve_split(0, occupancy_ps=1000, latency_ps=300)
        assert done == 300
        assert channel.busy_until_ps == 1000
        done2 = channel.serve_split(0, occupancy_ps=1000, latency_ps=300)
        assert done2 == 1300    # queued behind first occupancy

    def test_stats_and_reset(self):
        channel = MemoryChannel()
        channel.serve(0, 100)
        channel.serve(0, 100)
        assert channel.stats.requests == 2
        assert channel.stats.waited_ps == 100
        channel.reset()
        assert channel.stats.requests == 0

    def test_utilization(self):
        channel = MemoryChannel()
        channel.serve(0, 500)
        assert channel.utilization(1000) == pytest.approx(0.5)


class TestChannelSaturation:
    def test_throughput_caps_at_calibrated_plateau(self):
        """Serving 4 KB reads from many threads must plateau near the
        Fig. 9 cap."""
        model = HostCostModel(NVDC_TL, "nvdc")
        channel = MemoryChannel()
        occupancy = model.channel_service_ps(kb(4), is_write=False)
        n_ops = 10_000
        end = 0
        for _ in range(n_ops):
            end = channel.serve(0, occupancy)
        bw = (n_ops * kb(4) / 1e6) / (end / 1e12)
        assert bw == pytest.approx(
            DEFAULT_CALIBRATION.nvdc_channel_read_mb_s, rel=0.05)
