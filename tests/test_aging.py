"""The endurance-campaign harness: gates, telemetry, determinism.

One quick campaign (module-scoped — it is the expensive fixture every
assertion shares) must pass all four acceptance gates, render a valid
``repro.aging/1`` report, and expose internally-consistent fleet
telemetry.  Determinism is checked on a deliberately tiny single-
strategy config: byte-identical reruns, snapshot-vs-rebuild equality,
and ``PYTHONHASHSEED`` independence via subprocesses.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

from repro.aging.campaign import AgingConfig, run_aging
from repro.aging.report import render_report, validate_report
from repro.errors import ConfigError
from repro.nand.endurance import (paper_device_lifetime,
                                  project_lifetime_years)
from repro.nand.spec import ZNAND_64GB
from repro.units import gb

QUICK = AgingConfig(quick=True)
SMALL = AgingConfig(quick=True, shards=1, max_epochs=3,
                    strategies=("greedy",))


@pytest.fixture(scope="module")
def quick_result():
    return run_aging(QUICK)


@pytest.fixture(scope="module")
def quick_payload(quick_result):
    return json.loads(render_report(quick_result, timestamp="pinned"))


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            AgingConfig(strategies=("greedy", "fifo"))

    def test_greedy_baseline_required(self):
        with pytest.raises(ConfigError):
            AgingConfig(strategies=("static",))

    def test_duplicate_strategies_rejected(self):
        with pytest.raises(ConfigError):
            AgingConfig(strategies=("greedy", "greedy"))

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigError):
            AgingConfig(shards=0)
        with pytest.raises(ConfigError):
            AgingConfig(wear_accel=0)
        with pytest.raises(ConfigError):
            AgingConfig(footprint_pages=4)


class TestGates:
    def test_campaign_is_clean(self, quick_result):
        assert quick_result.zero_loss
        assert quick_result.sanitizers_quiet
        assert quick_result.graceful_order
        assert quick_result.leveling_beats_greedy
        assert quick_result.ok

    def test_every_shard_lost_nothing(self, quick_result):
        assert all(s.data_loss == 0 for s in quick_result.shards)

    def test_leveling_strictly_beats_greedy_per_strategy(
            self, quick_result):
        greedy = quick_result.mean_wear_spread_x1000("greedy")
        for name in QUICK.strategies:
            if name == "greedy":
                continue
            assert quick_result.mean_wear_spread_x1000(name) < greedy

    def test_population_reaches_end_of_life(self, quick_result):
        """The campaign must actually age shards to death — a run where
        nobody dies proves nothing about graceful degradation."""
        assert any(s.read_only_epoch > 0 for s in quick_result.shards)


class TestTelemetry:
    def test_shard_population(self, quick_result):
        assert len(quick_result.shards) == (
            QUICK.shard_count * len(QUICK.strategies))
        for name in QUICK.strategies:
            assert len(quick_result.by_strategy(name)) == QUICK.shard_count

    def test_survival_curves_are_nonincreasing(self, quick_result):
        for name in QUICK.strategies:
            curve = quick_result.survival_curve(name)
            assert len(curve) == QUICK.epoch_budget
            assert all(a >= b for a, b in zip(curve, curve[1:]))
            assert curve[0] <= QUICK.shard_count

    def test_time_to_read_only_partitions_the_population(
            self, quick_result):
        for name in QUICK.strategies:
            ttro = quick_result.time_to_read_only(name)
            assert ttro["reached"] + ttro["censored"] == QUICK.shard_count
            if ttro["reached"]:
                assert 1 <= ttro["p50_epochs"] <= ttro["p90_epochs"]

    def test_dead_shards_are_marked_read_only(self, quick_result):
        for shard in quick_result.shards:
            if shard.read_only_epoch > 0:
                assert shard.end_state == "read_only"
                assert shard.read_only_epoch <= shard.epochs_run

    def test_ladder_histogram_counts_every_transition(self, quick_result):
        histogram = quick_result.ladder_histogram()
        assert sum(histogram.values()) == sum(
            len(s.ladder) for s in quick_result.shards)
        assert histogram.get("remap->read_only", 0) >= 1

    def test_epoch_logs_cover_every_epoch(self, quick_result):
        for shard in quick_result.shards:
            assert [e.epoch for e in shard.epoch_log] == list(
                range(1, shard.epochs_run + 1))
            assert all(e.wear_spread_x1000 >= 1000
                       for e in shard.epoch_log)


class TestReport:
    def test_report_validates(self, quick_payload):
        assert validate_report(quick_payload) == []

    def test_snapshot_knob_never_reaches_the_report(self, quick_payload):
        """snapshot-vs-rebuild byte-identity requires that the knob is
        not serialised anywhere."""
        assert "snapshot" not in quick_payload["config"]

    def test_missing_key_is_flagged(self, quick_payload):
        broken = dict(quick_payload)
        del broken["totals"]
        assert validate_report(broken)

    def test_wrong_schema_is_flagged(self, quick_payload):
        broken = dict(quick_payload, schema="repro.aging/2")
        assert validate_report(broken)

    def test_negative_counter_is_flagged(self, quick_payload):
        broken = json.loads(json.dumps(quick_payload))
        broken["totals"]["writes"] = -1
        assert validate_report(broken)

    def test_mangled_shard_is_flagged(self, quick_payload):
        broken = json.loads(json.dumps(quick_payload))
        del broken["strategies"][0]["shards"][0]["ladder"]
        assert validate_report(broken)

    def test_non_bool_gate_is_flagged(self, quick_payload):
        broken = json.loads(json.dumps(quick_payload))
        broken["gates"]["zero_loss"] = 1
        assert validate_report(broken)


class TestAnalyticCrossCheck:
    """§VII-A consistency: the closed-form projection and the measured
    campaign must tell the same story."""

    def test_paper_lifetime_matches_the_closed_form(self, quick_payload):
        analytic = quick_payload["analytic"]
        assert analytic["paper_lifetime_years_x1000"] == round(
            paper_device_lifetime() * 1000)
        assert analytic["paper_waf_x1000"] == 1100

    def test_measured_waf_is_near_the_paper_operating_point(
            self, quick_result, quick_payload):
        measured = quick_payload["analytic"]["measured_waf_x1000"]
        assert measured == quick_result.mean_waf_x1000("greedy")
        assert 1000 <= measured <= 1400    # paper's 1.1 +/- workload slack

    def test_projection_recomputes_from_measured_numbers(
            self, quick_result, quick_payload):
        analytic = quick_payload["analytic"]
        spread = quick_result.mean_wear_spread_x1000("greedy")
        expected = project_lifetime_years(
            ZNAND_64GB, 2 * gb(64), 58.3,
            waf=analytic["measured_waf_x1000"] / 1000,
            wear_spread=max(1.0, spread / 1000))
        assert analytic["projected_lifetime_years_x1000"] == round(
            expected * 1000)
        # The uneven wear the campaign measured can only cost lifetime.
        assert (analytic["projected_lifetime_years_x1000"]
                <= analytic["paper_lifetime_years_x1000"])


class TestDeterminism:
    def test_repeated_runs_render_byte_identical_reports(self):
        first = render_report(run_aging(SMALL))
        second = render_report(run_aging(SMALL))
        assert first == second

    def test_snapshot_and_rebuild_paths_agree_byte_for_byte(self):
        accelerated = render_report(run_aging(SMALL))
        rebuilt = render_report(run_aging(
            dataclasses.replace(SMALL, snapshot=False)))
        assert accelerated == rebuilt


_DIGEST_SNIPPET = """
import zlib
from repro.aging.campaign import AgingConfig, run_aging
from repro.aging.report import render_report

report = render_report(run_aging(AgingConfig(
    quick=True, shards=1, max_epochs=3, strategies=("greedy",))))
print(zlib.crc32(report.encode()))
"""


def _campaign_digest(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SNIPPET],
        capture_output=True, text=True, env=env, check=True)
    return result.stdout.strip()


def test_campaign_is_hash_seed_independent():
    assert len({_campaign_digest(seed) for seed in ("0", "12345")}) == 1
