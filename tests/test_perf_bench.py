"""The ``repro bench`` harness: BENCH file schema and comparison gate.

The BENCH json schema is an interface — CI parses it for the regression
gate, and humans diff the files across PRs — so its shape is pinned
here.  To keep the tests fast they bench ``fig12`` (the cheapest
experiment, pure arithmetic); schema checks are independent of which
experiment ran.
"""

import json

import pytest

from repro.experiments.runner import ALL_EXPERIMENTS
from repro.perf.bench import (QUICK_SUBSET, SCHEMA_VERSION, compare_table,
                              find_regressions, latest_bench, load_bench,
                              run_bench, write_bench)

#: Every key a BENCH payload must carry, and the per-experiment keys.
TOP_KEYS = {"schema", "created_utc", "host", "total_wall_s", "experiments",
            "scenarios"}
ENTRY_KEYS = {"experiment_id", "wall_s", "events_executed", "events_per_s",
              "peak_trace_records"}
SCENARIO_KEYS = {"scenario_id", "wall_s", "cuts", "cuts_per_s",
                 "events_executed"}


@pytest.fixture(scope="module")
def payload():
    return run_bench(only=["fig12"], verbose=False)


@pytest.fixture(scope="module")
def scenario_payload():
    return run_bench(only=["soak-quick"], verbose=False)


class TestSchema:
    def test_top_level_shape(self, payload):
        assert set(payload) == TOP_KEYS
        assert payload["schema"] == SCHEMA_VERSION
        assert isinstance(payload["total_wall_s"], float)
        # ISO-8601 UTC stamp.
        assert payload["created_utc"].endswith("Z")
        assert set(payload["host"]) == {"python", "platform", "cpus"}
        assert payload["host"]["cpus"] >= 1

    def test_entry_shape(self, payload):
        (entry,) = payload["experiments"]
        assert set(entry) == ENTRY_KEYS
        assert entry["experiment_id"] == "fig12"
        assert entry["wall_s"] >= 0
        assert entry["events_executed"] >= 0
        assert entry["events_per_s"] >= 0
        assert entry["peak_trace_records"] >= 0

    def test_payload_is_json_round_trippable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_experiment_only_run_has_no_scenarios(self, payload):
        assert payload["scenarios"] == []

    def test_scenario_entry_shape(self, scenario_payload):
        assert scenario_payload["experiments"] == []
        (entry,) = scenario_payload["scenarios"]
        assert set(entry) == SCENARIO_KEYS
        assert entry["scenario_id"] == "soak-quick"
        assert entry["wall_s"] >= 0
        assert entry["cuts"] >= 1
        assert entry["cuts_per_s"] >= 0
        assert entry["events_executed"] >= 0

    def test_quick_subset_ids_exist(self):
        assert set(QUICK_SUBSET) <= set(ALL_EXPERIMENTS)

    def test_unknown_id_raises_with_valid_ids(self):
        with pytest.raises(ValueError, match="fig99"):
            run_bench(only=["fig99"])
        with pytest.raises(ValueError, match="valid ids"):
            run_bench(only=["fig99"])


class TestFiles:
    def test_write_load_round_trip(self, payload, tmp_path):
        path = write_bench(payload, out_dir=str(tmp_path))
        assert path.endswith(".json")
        assert "BENCH_" in path
        assert load_bench(path) == payload

    def test_write_never_clobbers(self, payload, tmp_path):
        first = write_bench(payload, out_dir=str(tmp_path))
        second = write_bench(payload, out_dir=str(tmp_path))
        assert first != second
        assert load_bench(second) == payload

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": 999, "experiments": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(str(bad))

    def test_latest_bench_picks_newest_and_honours_exclude(self, payload,
                                                           tmp_path):
        assert latest_bench(str(tmp_path)) is None
        first = write_bench(payload, out_dir=str(tmp_path))
        second = write_bench(payload, out_dir=str(tmp_path))
        assert latest_bench(str(tmp_path)) == second
        assert latest_bench(str(tmp_path), exclude=second) == first


def _payload_with(wall_s):
    return {
        "schema": SCHEMA_VERSION,
        "experiments": [{"experiment_id": "fig12", "wall_s": wall_s,
                         "events_executed": 10, "events_per_s": 1.0,
                         "peak_trace_records": 0}],
    }


class TestComparison:
    def test_compare_table_reports_ratio(self):
        lines = compare_table(_payload_with(1.0), _payload_with(2.0))
        assert any("2.00x" in line for line in lines)

    def test_compare_table_flags_new_experiments(self):
        lines = compare_table({"schema": SCHEMA_VERSION, "experiments": []},
                              _payload_with(1.0))
        assert any("new" in line for line in lines)

    def test_gate_passes_within_ratio(self):
        assert find_regressions(_payload_with(1.0), _payload_with(1.5),
                                max_ratio=2.0) == []

    def test_gate_fails_beyond_ratio(self):
        failures = find_regressions(_payload_with(1.0), _payload_with(3.0),
                                    max_ratio=2.0)
        assert len(failures) == 1
        assert "fig12" in failures[0]
        assert "3.00x" in failures[0]

    def test_gate_ignores_ids_missing_from_baseline(self):
        empty = {"schema": SCHEMA_VERSION, "experiments": []}
        assert find_regressions(empty, _payload_with(9.0),
                                max_ratio=1.0) == []

    def test_gate_covers_scenarios(self):
        def scenario_payload(wall_s):
            return {"schema": SCHEMA_VERSION, "experiments": [],
                    "scenarios": [{"scenario_id": "crash-quick",
                                   "wall_s": wall_s, "cuts": 66,
                                   "cuts_per_s": 66 / wall_s,
                                   "events_executed": 100}]}
        assert find_regressions(scenario_payload(1.0), scenario_payload(1.5),
                                max_ratio=2.0) == []
        failures = find_regressions(scenario_payload(1.0),
                                    scenario_payload(3.0), max_ratio=2.0)
        assert len(failures) == 1
        assert "crash-quick" in failures[0]
