"""Tests for the transaction-level NVMC: window scheduling + data flow."""


from repro.ddr.device import DRAMDevice
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import NVDIMMC_1600
from repro.nand.controller import NANDController
from repro.nand.spec import ZNANDSpec
from repro.nvmc.cp import CPCommand, Opcode, Phase
from repro.nvmc.fsm import FirmwareModel
from repro.nvmc.nvmc import NVMCModel
from repro.units import kb, mb, us

SPEC = NVDIMMC_1600


def make_nvmc(firmware_step_ps=0, cp_queue_depth=1):
    timeline = RefreshTimeline(SPEC)
    nand_spec = ZNANDSpec(
        name="test", capacity_bytes=128 * 16 * kb(4), page_bytes=kb(4),
        pages_per_block=16, planes_per_die=1, dies=1,
        initial_bad_block_ppm=0)
    nand = NANDController(nand_spec, logical_capacity_bytes=64 * 16 * kb(4),
                          channels=2, dies_total=2)
    dram = DRAMDevice(SPEC, capacity_bytes=mb(64))
    nvmc = NVMCModel(timeline, nand, dram,
                     firmware=FirmwareModel(step_ps=firmware_step_ps),
                     cp_queue_depth=cp_queue_depth)
    return nvmc, nand, dram, timeline


PAGE = bytes(range(256)) * 16


class TestCachefill:
    def test_moves_nand_page_into_dram_slot(self):
        nvmc, nand, dram, _ = make_nvmc()
        nand.program_page(7, PAGE, 0)
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                        dram_slot=3, nand_page=7)
        result = nvmc.submit(cmd, submit_ps=us(200))
        assert dram.peek(nvmc._slot_addr(3), kb(4)) == PAGE
        assert result.opcode is Opcode.CACHEFILL

    def test_ideal_cachefill_takes_three_windows(self):
        """§V-A: poll + data + ack, one refresh window each, when the
        firmware is instant and the NAND page was never written."""
        nvmc, _, _, timeline = make_nvmc(firmware_step_ps=0)
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                        dram_slot=0, nand_page=0)
        result = nvmc.submit(cmd, submit_ps=0)
        assert result.windows_used == 3
        # Completion lands in the third window (>= 3 * tREFI minimum).
        assert result.completion_ps >= 3 * timeline.trefi_ps
        assert result.completion_ps < 4 * timeline.trefi_ps

    def test_unwritten_nand_page_fills_zeros(self):
        nvmc, _, dram, _ = make_nvmc()
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                        dram_slot=1, nand_page=9)
        nvmc.submit(cmd, submit_ps=0)
        assert dram.peek(nvmc._slot_addr(1), kb(4)) == bytes(kb(4))


class TestWriteback:
    def test_moves_dram_slot_into_nand(self):
        nvmc, nand, dram, _ = make_nvmc()
        dram.poke(nvmc._slot_addr(2), PAGE)
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                        dram_slot=2, nand_page=5)
        nvmc.submit(cmd, submit_ps=0)
        data, _ = nand.read_page(5, 0)
        assert data == PAGE

    def test_ideal_writeback_takes_three_windows(self):
        nvmc, _, dram, _ = make_nvmc(firmware_step_ps=0)
        dram.poke(nvmc._slot_addr(0), PAGE)
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                        dram_slot=0, nand_page=0)
        result = nvmc.submit(cmd, submit_ps=0)
        assert result.windows_used == 3

    def test_ack_does_not_wait_for_nand_program(self):
        """Data is captured in the battery-backed buffer; the ~100 us
        program continues after the ack."""
        nvmc, nand, dram, _ = make_nvmc(firmware_step_ps=0)
        dram.poke(nvmc._slot_addr(0), PAGE)
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                        dram_slot=0, nand_page=0)
        result = nvmc.submit(cmd, submit_ps=0)
        assert result.latency_ps < nand.spec.program_ps + 3 * us(7.8)


class TestPairTiming:
    def test_poc_pair_is_slower_than_theoretical(self):
        """§VII-B2: firmware lag + NAND time push a writeback+cachefill
        pair well past the 6-window theoretical minimum."""
        nvmc, nand, dram, timeline = make_nvmc(
            firmware_step_ps=FirmwareModel().step_ps)
        nand.preload(1, PAGE)
        dram.poke(nvmc._slot_addr(0), PAGE)
        wb = CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                       dram_slot=0, nand_page=2)
        r1 = nvmc.submit(wb, submit_ps=0)
        fill = CPCommand(phase=Phase.EVEN, opcode=Opcode.CACHEFILL,
                         dram_slot=0, nand_page=1)
        r2 = nvmc.submit(fill, submit_ps=r1.completion_ps + us(1))
        total = r2.completion_ps
        windows = total / timeline.trefi_ps
        assert 7.0 <= windows <= 11.0   # paper: 8.9

    def test_merged_command_beats_separate_pair(self):
        """§VII-C item (4): merged WB+fill amortises poll/ack windows."""
        nvmc1, nand1, dram1, _ = make_nvmc(firmware_step_ps=0)
        nand1.preload(1, PAGE)
        dram1.poke(nvmc1._slot_addr(0), PAGE)
        r1 = nvmc1.submit(CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                                    dram_slot=0, nand_page=2), 0)
        r2 = nvmc1.submit(CPCommand(phase=Phase.EVEN,
                                    opcode=Opcode.CACHEFILL,
                                    dram_slot=0, nand_page=1),
                          r1.completion_ps)
        separate = r2.completion_ps

        nvmc2, nand2, dram2, _ = make_nvmc(firmware_step_ps=0)
        nand2.preload(1, PAGE)
        dram2.poke(nvmc2._slot_addr(0), PAGE)
        merged = nvmc2.submit(CPCommand(
            phase=Phase.ODD, opcode=Opcode.MERGED, dram_slot=0, nand_page=1,
            wb_dram_slot=0, wb_nand_page=2), 0)
        assert merged.completion_ps < separate
        assert dram2.peek(nvmc2._slot_addr(0), kb(4)) == PAGE

    def test_device_serialises_commands(self):
        """Queue depth 1: a second command waits for the first."""
        nvmc, _, _, _ = make_nvmc(firmware_step_ps=0)
        r1 = nvmc.submit(CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                                   dram_slot=0, nand_page=0), 0)
        r2 = nvmc.submit(CPCommand(phase=Phase.EVEN, opcode=Opcode.CACHEFILL,
                                   dram_slot=1, nand_page=1), 0)
        assert r2.completion_ps > r1.completion_ps


class TestPhaseManagement:
    def test_next_phase_toggles(self):
        nvmc, _, _, _ = make_nvmc()
        assert nvmc.next_phase() is Phase.ODD
        assert nvmc.next_phase() is Phase.EVEN
        assert nvmc.next_phase() is Phase.ODD
