"""Tests for Resource / Lock / Store queueing primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Lock, Resource, Store, Timeout
from repro.sim.process import spawn


class TestResource:
    def test_capacity_limits_concurrency(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        active = []
        peak = []

        def worker(i):
            yield res.acquire()
            active.append(i)
            peak.append(len(active))
            yield Timeout(10)
            active.remove(i)
            res.release()

        for i in range(5):
            spawn(eng, worker(i))
        eng.run()
        assert max(peak) == 2

    def test_fifo_admission(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def worker(i):
            yield res.acquire()
            order.append(i)
            yield Timeout(5)
            res.release()

        for i in range(4):
            spawn(eng, worker(i))
        eng.run()
        assert order == [0, 1, 2, 3]

    def test_release_idle_raises(self):
        eng = Engine()
        res = Resource(eng)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Resource(eng, capacity=0)

    def test_queue_length(self):
        eng = Engine()
        res = Resource(eng, capacity=1)

        def holder():
            yield res.acquire()
            yield Timeout(100)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        spawn(eng, holder())
        spawn(eng, waiter())
        eng.run(until=50)
        assert res.queue_length == 1
        eng.run()
        assert res.queue_length == 0

    def test_utilization_tracks_busy_time(self):
        eng = Engine()
        res = Resource(eng, capacity=1)

        def worker():
            yield res.acquire()
            yield Timeout(50)
            res.release()
            yield Timeout(50)

        spawn(eng, worker())
        eng.run()
        assert res.utilization() == pytest.approx(0.5, abs=0.01)


class TestLock:
    def test_lock_is_capacity_one(self):
        eng = Engine()
        lock = Lock(eng)
        assert lock.capacity == 1

    def test_mutual_exclusion(self):
        eng = Engine()
        lock = Lock(eng)
        inside = []

        def critical(i):
            yield lock.acquire()
            assert not inside
            inside.append(i)
            yield Timeout(10)
            inside.remove(i)
            lock.release()

        for i in range(3):
            spawn(eng, critical(i))
        eng.run()


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        spawn(eng, getter())
        eng.run()
        assert got == ["a"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, eng.now))

        spawn(eng, getter())
        eng.call_at(30, lambda: store.put("late"))
        eng.run()
        assert got == [("late", 30)]

    def test_fifo_items_and_getters(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def getter(i):
            item = yield store.get()
            got.append((i, item))

        for i in range(3):
            spawn(eng, getter(i))
        for item in "xyz":
            eng.call_at(10, lambda it=item: store.put(it))
        eng.run()
        assert got == [(0, "x"), (1, "y"), (2, "z")]

    def test_len_counts_buffered(self):
        eng = Engine()
        store = Store(eng)
        store.put(1)
        store.put(2)
        assert len(store) == 2
