"""Tests for the reserved region layout and block-device arithmetic."""

import pytest

from repro.errors import KernelError
from repro.kernel.blockdev import (SECTOR_BYTES, SECTORS_PER_PAGE,
                                   page_to_sector, sector_to_page)
from repro.kernel.memmap import ReservedRegion, paper_region
from repro.units import PAGE_4K, gb, mb


class TestRegionLayout:
    def test_fig5_ordering(self):
        """CP page first, then metadata, then slots (Fig. 5)."""
        region = ReservedRegion(base_paddr=0, size_bytes=mb(64))
        layout = region.layout
        assert layout.cp_offset == 0
        assert layout.cp_bytes == PAGE_4K
        assert layout.metadata_offset == PAGE_4K
        assert layout.metadata_bytes == mb(64) // 1024
        assert layout.slots_offset == PAGE_4K + layout.metadata_bytes

    def test_paper_metadata_is_16mb(self):
        """§V-C: 'the 16MB metadata area' for the 16 GB module."""
        region = paper_region()
        assert region.layout.metadata_bytes == mb(16)

    def test_paper_region_yields_about_15gb_of_slots(self):
        """§VII-B1: 'the nvdc driver internally allocates 15 GB for
        cache slots' out of the 16 GB module."""
        region = paper_region()
        slots_gb = region.layout.slots_bytes / gb(1)
        assert 14.5 <= slots_gb <= 15.1

    def test_slot_addresses_are_page_aligned_and_disjoint(self):
        region = ReservedRegion(base_paddr=gb(1), size_bytes=mb(64))
        addrs = [region.slot_paddr(i) for i in range(region.num_slots)]
        assert all(a % PAGE_4K == 0 for a in addrs)
        assert len(set(addrs)) == len(addrs)
        assert addrs[1] - addrs[0] == PAGE_4K

    def test_slot_out_of_range(self):
        region = ReservedRegion(base_paddr=0, size_bytes=mb(64))
        with pytest.raises(KernelError):
            region.slot_paddr(region.num_slots)

    def test_contains(self):
        region = ReservedRegion(base_paddr=gb(1), size_bytes=mb(64))
        assert region.contains(gb(1))
        assert region.contains(gb(1) + mb(64) - 1)
        assert not region.contains(gb(1) - 1)

    def test_too_small_rejected(self):
        with pytest.raises(KernelError):
            ReservedRegion(base_paddr=0, size_bytes=PAGE_4K * 2)

    def test_unaligned_base_rejected(self):
        with pytest.raises(KernelError):
            ReservedRegion(base_paddr=5, size_bytes=mb(64))

    def test_kernel_parameter_string(self):
        """§IV-B: memmap=nn$ss."""
        text = ReservedRegion.kernel_parameter(gb(4), gb(16))
        assert text == f"memmap={gb(16)}$0x100000000"


class TestSectorArithmetic:
    def test_sectors_per_page(self):
        assert SECTOR_BYTES == 512
        assert SECTORS_PER_PAGE == 8

    def test_direct_mapping(self):
        """§IV-B: sector (512 B) -> NAND page (4 KB) direct mapping."""
        assert sector_to_page(0) == 0
        assert sector_to_page(7) == 0
        assert sector_to_page(8) == 1
        assert page_to_sector(3) == 24
