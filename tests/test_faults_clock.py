"""Tests for the fault clock and its injection hook sites."""

import pytest

from repro.errors import FaultInjectionError, PowerLossInterrupt
from repro.faults import FaultClock
from repro.nand.ftl import FlashTranslationLayer
from repro.nand.device import NANDDie
from repro.nand.spec import ZNANDSpec
from repro.sim import Engine
from repro.units import kb


class TestScheduling:
    def test_time_cut_fires_at_matching_time(self):
        clock = FaultClock().cut_at(1000)
        clock.check(999, "engine")
        with pytest.raises(PowerLossInterrupt) as exc:
            clock.check(1000, "engine")
        assert exc.value.time_ps == 1000
        assert exc.value.site == "engine"

    def test_each_cut_fires_exactly_once(self):
        clock = FaultClock().cut_at(0)
        with pytest.raises(PowerLossInterrupt):
            clock.check(5, "engine")
        clock.check(10, "engine")        # already fired: no second raise
        assert clock.fired == 1
        assert not clock.armed

    def test_count_cut_fires_on_nth_visit(self):
        clock = FaultClock().cut_on_visit(3, site="ftl.gc")
        clock.tick("ftl.gc")
        clock.tick("ftl.gc")
        with pytest.raises(PowerLossInterrupt):
            clock.tick("ftl.gc")

    def test_site_prefix_matching(self):
        clock = FaultClock().cut_on_visit(1, site="nvmc.dma")
        clock.check(0, "nvmc.writeback.program")    # no match, no fire
        with pytest.raises(PowerLossInterrupt):
            clock.check(0, "nvmc.dma.fill")

    def test_unrelated_site_never_fires(self):
        clock = FaultClock().cut_at(0, site="power.drain")
        for t in range(5):
            clock.check(t * 1000, "engine")
        assert clock.armed and clock.fired == 0

    def test_multiple_cuts_are_independent(self):
        clock = FaultClock()
        clock.cut_at(100, site="engine")
        clock.cut_on_visit(1, site="power.drain")
        with pytest.raises(PowerLossInterrupt):
            clock.check(100, "engine")
        with pytest.raises(PowerLossInterrupt):
            clock.check(200, "power.drain")
        assert clock.fired == 2

    def test_visit_recording(self):
        clock = FaultClock(record_visits=True)
        clock.check(7, "nvmc.dma.fill")
        clock.tick("ftl.gc")
        assert clock.visits == [("nvmc.dma.fill", 7), ("ftl.gc", -1)]

    def test_bad_arming_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultClock().cut_at(-1)
        with pytest.raises(FaultInjectionError):
            FaultClock().cut_on_visit(0)


class TestEventCuts:
    def test_event_cut_fires_at_exact_global_index(self):
        clock = FaultClock().cut_on_event(3)
        clock.check(100, "engine")
        clock.tick("ftl.gc")             # any site counts
        with pytest.raises(PowerLossInterrupt) as exc:
            clock.check(300, "nvmc.dma.fill")
        assert clock.events_seen == 3
        assert exc.value.site == "nvmc.dma.fill"

    def test_events_seen_numbers_every_visit(self):
        clock = FaultClock()
        for site in ("engine", "ftl.gc", "power.drain", "nvmc.dma.fill"):
            clock.check(0, site)
        clock.tick("ftl.program")
        assert clock.events_seen == 5

    def test_event_cut_fires_once(self):
        clock = FaultClock().cut_on_event(1)
        with pytest.raises(PowerLossInterrupt):
            clock.check(0, "engine")
        clock.check(0, "engine")         # already fired: counts, no raise
        assert clock.events_seen == 2
        assert clock.fired == 1 and not clock.armed

    def test_event_cut_is_site_agnostic(self):
        # Same index, different sites on replay: still fires at index 2.
        clock = FaultClock().cut_on_event(2)
        clock.check(0, "nvmc.dma.fill")
        with pytest.raises(PowerLossInterrupt):
            clock.tick("ftl.program")

    def test_late_arming_catches_up(self):
        # An index already passed fires on the next visit, not never.
        clock = FaultClock()
        clock.check(0, "engine")
        clock.check(0, "engine")
        clock.cut_on_event(1)
        with pytest.raises(PowerLossInterrupt):
            clock.check(0, "engine")

    def test_bad_event_index_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultClock().cut_on_event(0)
        with pytest.raises(FaultInjectionError):
            FaultClock().cut_on_event(-3)


class TestEngineHook:
    def test_engine_cut_interrupts_dispatch(self):
        engine = Engine()
        seen = []
        for t in (100, 200, 300):
            engine.call_at(t, lambda t=t: seen.append(t))
        engine.install_fault_clock(FaultClock().cut_at(250, site="engine"))
        with pytest.raises(PowerLossInterrupt):
            engine.run()
        # Events strictly before the cut ran; the rest were abandoned
        # in the queue the way a real power cut abandons them.
        assert seen == [100, 200]

    def test_uninstalling_restores_normal_run(self):
        engine = Engine()
        seen = []
        engine.call_at(100, lambda: seen.append(100))
        engine.install_fault_clock(None)
        engine.run()
        assert seen == [100]


class TestFTLGCHook:
    def test_gc_relocation_ticks_the_clock(self):
        import random
        spec = ZNANDSpec(name="tiny", capacity_bytes=20 * 16 * kb(4),
                         page_bytes=kb(4), pages_per_block=16,
                         planes_per_die=1, dies=1,
                         initial_bad_block_ppm=0)
        die = NANDDie(spec, die_index=0, rng_seed=1)
        ftl = FlashTranslationLayer([die],
                                    logical_capacity_bytes=10 * 16 * kb(4))
        clock = FaultClock().cut_on_visit(1, site="ftl.gc")
        ftl.fault_clock = clock
        rng = random.Random(0)
        data = bytes(kb(4))
        with pytest.raises(PowerLossInterrupt):
            # Random overwrites on tight over-provisioning leave GC
            # victims partially valid, forcing relocation — the hook.
            for lpn in range(ftl.logical_pages):
                ftl.write_page(lpn, data)
            for _ in range(ftl.logical_pages * 5):
                ftl.write_page(rng.randrange(ftl.logical_pages), data)
        assert clock.fired == 1
