"""Tests for the DMA engine's window budgeting and the FSM tracker."""

import pytest

from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import NVDIMMC_1600
from repro.errors import DeviceError
from repro.nvmc.dma import DMAEngine
from repro.nvmc.fsm import FirmwareModel, FSMTracker, NVMCState
from repro.units import kb, us

SPEC = NVDIMMC_1600
TIMELINE = RefreshTimeline(SPEC)


class TestDMA:
    def test_4kb_fits_in_900ns_window(self):
        """§IV-A: up to 4 KB per extra-tRFC window."""
        dma = DMAEngine(SPEC)
        window = TIMELINE.window(0)
        assert dma.fits_in_window(kb(4), window)

    def test_8kb_requires_bigger_budget(self):
        """§VII-C item (3): 8 KB per window is time-feasible but the
        PoC's budget register caps at 4 KB."""
        stock = DMAEngine(SPEC)
        window = TIMELINE.window(0)
        assert not stock.fits_in_window(kb(8), window)
        wide = DMAEngine(SPEC, window_bytes=kb(8))
        assert wide.fits_in_window(kb(8), window)   # 8 KB < 900 ns of bus

    def test_schedule_returns_completion_inside_window(self):
        dma = DMAEngine(SPEC)
        window = TIMELINE.window(0)
        end = dma.schedule(kb(4), window)
        assert window.start_ps < end <= window.end_ps

    def test_over_budget_raises(self):
        dma = DMAEngine(SPEC)
        with pytest.raises(DeviceError):
            dma.schedule(kb(8), TIMELINE.window(0))

    def test_too_slow_for_window_raises(self):
        # A 4 KB transfer cannot fit a stock-tRFC (zero-length) window.
        from repro.ddr.spec import DDR4_1600
        dma = DMAEngine(DDR4_1600)
        timeline = RefreshTimeline(DDR4_1600)
        with pytest.raises(DeviceError):
            dma.schedule(kb(4), timeline.window(0))

    def test_max_bytes_for_window(self):
        dma = DMAEngine(SPEC)
        window = TIMELINE.window(0)
        max_bytes = dma.max_bytes_for(window)
        assert max_bytes == kb(4)   # capped by the budget register
        wide = DMAEngine(SPEC, window_bytes=kb(64))
        physical_cap = wide.max_bytes_for(window)
        assert kb(8) <= physical_cap < kb(64)

    def test_stats(self):
        dma = DMAEngine(SPEC)
        dma.schedule(kb(4), TIMELINE.window(0))
        dma.schedule(64, TIMELINE.window(1))
        assert dma.stats.transfers == 2
        assert dma.stats.bytes_moved == kb(4) + 64


class TestFirmwareModel:
    def test_default_lag_is_positive(self):
        fw = FirmwareModel()
        assert fw.ready_after(100) > 100

    def test_asic_mode_zero_lag(self):
        fw = FirmwareModel(step_ps=0)
        assert fw.ready_after(100) == 100

    def test_lag_fits_between_adjacent_windows(self):
        """The calibrated lag lets a lone step reach the *next* window
        (poll at W1 -> transfer at W2), matching the 3-window minimum
        for a single command; the misses come from NAND time stacking
        on top (§VII-B2)."""
        fw = FirmwareModel()
        w0 = TIMELINE.window(0)
        ready = fw.ready_after(w0.start_ps + us(0.35))
        assert ready < TIMELINE.window(1).start_ps


class TestFSMTracker:
    def test_legal_cachefill_path(self):
        fsm = FSMTracker()
        for state in (NVMCState.POLL_CP, NVMCState.NAND_READ,
                      NVMCState.DRAM_WRITE, NVMCState.ACK, NVMCState.IDLE):
            fsm.transition(state, 0)
        assert fsm.state is NVMCState.IDLE
        assert len(fsm.history) == 5

    def test_legal_writeback_path(self):
        fsm = FSMTracker()
        for state in (NVMCState.POLL_CP, NVMCState.DRAM_READ,
                      NVMCState.NAND_PROGRAM, NVMCState.ACK):
            fsm.transition(state, 0)
        assert fsm.state is NVMCState.ACK

    def test_illegal_transition_rejected(self):
        fsm = FSMTracker()
        with pytest.raises(DeviceError):
            fsm.transition(NVMCState.DRAM_WRITE, 0)
