"""Suite-wide fixtures: sanitizers on by default.

Every test runs with an enabled ambient tracer and the full
``repro.check`` sanitizer suite subscribed to it; models built during
the test (with ``tracer=None``) adopt the ambient tracer and their
protocol behaviour is validated online.  A test that ends with
violations fails with the full report.

Tests that *deliberately* break protocol invariants (rogue bus masters,
``skip_coherence`` drivers, recorded-collision studies) opt out with::

    @pytest.mark.sanitizer_exempt
"""

import pytest

from repro.check.sanitizer import default_suite
from repro.sim.trace import Tracer, set_default_tracer

#: Retention bound: big experiment tests stay memory-bounded; the
#: sanitizers subscribe upstream of the drop, so observation — and the
#: violation check below — remains complete regardless.
TRACE_CAPACITY = 200_000


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sanitizer_exempt: test deliberately violates protocol "
        "invariants; do not attach the repro.check sanitizers")


@pytest.fixture(autouse=True)
def sanitized_trace(request):
    """Ambient tracer + sanitizer suite around every (non-exempt) test."""
    if request.node.get_closest_marker("sanitizer_exempt"):
        yield None
        return
    tracer = Tracer(enabled=True, capacity=TRACE_CAPACITY)
    suite = default_suite(strict=False)
    suite.attach(tracer)
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)
        suite.detach()
    if suite.violations:
        pytest.fail("sanitizer violations:\n" + suite.report(),
                    pytrace=False)
