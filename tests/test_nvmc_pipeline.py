"""Tests for the pipelined (queue depth > 1) NVMC model."""

import pytest

from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import NVDIMMC_1600
from repro.errors import ConfigError
from repro.nand.spec import ZNAND_64GB
from repro.nvmc.pipeline import PipelinedNVMC, queue_depth_sweep
from repro.units import kb, us

TIMELINE = RefreshTimeline(NVDIMMC_1600)


def run(depth=1, **kwargs):
    model = PipelinedNVMC(TIMELINE, ZNAND_64GB, queue_depth=depth,
                          **kwargs)
    return model.run_uncached(150)


class TestPipeline:
    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigError):
            PipelinedNVMC(TIMELINE, ZNAND_64GB, queue_depth=0)

    def test_depth_one_matches_three_window_floor(self):
        """With batched poll/ack sharing data windows, a lone miss
        cycles in ~3 windows (wb data, fill data, ack+poll overlap)."""
        result = run(depth=1)
        assert 2.5 <= result.windows_per_miss <= 4.5

    def test_depth_two_reaches_the_data_window_bound(self):
        """Steady state needs two 4 KB windows per miss: the ceiling is
        4 KB / (2 * tREFI) = 262.6 MB/s, reached already at depth 2."""
        result = run(depth=2)
        assert result.bandwidth_mb_s == pytest.approx(262.6, rel=0.03)

    def test_deeper_queues_add_nothing(self):
        assert run(depth=8).bandwidth_mb_s == pytest.approx(
            run(depth=2).bandwidth_mb_s, rel=0.02)

    def test_firmware_lag_hurts_shallow_queues_most(self):
        slow1 = run(depth=1, firmware_step_ps=us(4))
        fast1 = run(depth=1)
        slow4 = run(depth=4, firmware_step_ps=us(4))
        fast4 = run(depth=4)
        assert slow1.bandwidth_mb_s < fast1.bandwidth_mb_s
        # Depth hides the lag almost entirely.
        assert slow4.bandwidth_mb_s >= 0.95 * fast4.bandwidth_mb_s

    def test_clean_victims_skip_the_writeback_window(self):
        """Without writebacks, one data window per miss: the ceiling
        doubles (enough commands in flight to cover the NAND reads)."""
        dirty = run(depth=4, dirty_victims=True)
        clean = run(depth=4, dirty_victims=False)
        assert clean.bandwidth_mb_s > 1.7 * dirty.bandwidth_mb_s

    def test_8kb_window_doubles_the_ceiling(self):
        """§VII-C item (3): two pages per window."""
        wide = PipelinedNVMC(TIMELINE, ZNAND_64GB, queue_depth=4,
                             window_bytes=kb(8))
        result = wide.run_uncached(150)
        assert result.bandwidth_mb_s == pytest.approx(2 * 262.6, rel=0.05)

    def test_sweep_is_monotone(self):
        sweep = queue_depth_sweep(n_misses=100)
        bandwidths = [bw for _, bw in sweep]
        assert all(b2 >= b1 * 0.99 for b1, b2 in zip(bandwidths,
                                                     bandwidths[1:]))

    def test_result_arithmetic(self):
        result = run(depth=1)
        assert result.misses == 150
        assert result.span_ps > 0
        assert result.windows_per_miss > 0
