"""Fork-vs-rerun determinism for ``repro.sim.snapshot``.

The whole point of COW snapshots is that a fork is *indistinguishable*
from a run that never stopped: same results, same trace tail, byte for
byte.  Each test here runs a workload in two phases — phase A executes
live, a :class:`SimSnapshot` captures the full root set, then phase B
runs twice: once on the live (golden) state and once on a restored
fork.  Goldens and forks must agree exactly.

Also covered: hypothesis round-trips for the engine heap and the FTL,
and end-to-end snapshot-vs-legacy byte-identity for ``repro soak`` and
``repro crash``.
"""

import json
import random
from functools import partial

from hypothesis import given, settings, strategies as st

import repro.recovery.explorer as explorer_mod
from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.device.nvdimmc import NVDIMMCSystem
from repro.health.soak import run_soak
from repro.nand.device import NANDDie
from repro.nand.ftl import FlashTranslationLayer
from repro.nand.spec import ZNANDSpec
from repro.nvmc.agent import NVMCProtocolAgent
from repro.recovery.explorer import explore
from repro.sim import Engine
from repro.sim.snapshot import SimSnapshot
from repro.units import PAGE_4K, kb, mb, us
from repro.workloads.filecopy import run_file_copy
from repro.workloads.fio import FIOJob, FIORunner
from repro.workloads.mixed_load import run_mixed_load
from repro.workloads.tpch import (TPCH_QUERIES, _SlotCache,
                                  generate_query_trace)


def fork(roots):
    """Capture ``roots`` and return an independent restored copy."""
    return SimSnapshot.capture(roots, label="test").restore()


class TestWorkloadForks:
    """Phase B on a fork must equal phase B on the golden run."""

    def test_fio_fork_matches_golden(self):
        def build():
            system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(16))
            runner = FIORunner(system)
            # Phase A: warm the footprint and run a small dirtying job.
            runner.run(FIOJob(rw="randwrite", size=mb(1), nops=200))
            return {"system": system, "runner": runner}

        def measure(roots):
            result = roots["runner"].run(
                FIOJob(rw="randrw", size=mb(1), nops=400, rwmixread=70),
                warmup=False)
            return (result.span_ps, result.total_ops, result.total_bytes,
                    result.latency.count, result.latency.min_ps,
                    result.latency.max_ps, round(result.latency.mean_us, 9))

        golden_roots = build()
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)

    def test_filecopy_fork_matches_golden(self):
        def build():
            system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32))
            # Phase A: a first copy leaves the cache and journal dirty.
            run_file_copy(system, file_bytes=mb(4), buckets=8)
            return {"system": system}

        def measure(roots):
            result = run_file_copy(roots["system"], file_bytes=mb(8),
                                   buckets=16)
            return (result.copied_gb, result.bandwidth_mb_s)

        golden_roots = build()
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)

    def test_mixed_load_fork_matches_golden(self):
        def build():
            system = NVDIMMCSystem(cache_bytes=mb(1), device_bytes=mb(32))
            run_mixed_load(system, users=8, transactions_per_user=3,
                           pages_per_user=2, seed=5)
            return {"system": system}

        def measure(roots):
            result = run_mixed_load(roots["system"], users=12,
                                    transactions_per_user=4,
                                    pages_per_user=3, seed=6)
            return (result.users, result.transactions, result.reads,
                    result.writes, result.validation_failures,
                    result.final_sweep_pages, result.span_ps)

        golden_roots = build()
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)

    def test_tpch_cache_fork_matches_golden(self):
        trace = generate_query_trace(TPCH_QUERIES["Q5"], db_pages=2000,
                                     seed=7)
        half = len(trace) // 2
        cache = _SlotCache(capacity_pages=128, policy_name="lrc")
        for page in trace[:half]:            # phase A
            cache.access(page)

        def measure(roots):
            c = roots["cache"]
            for page in trace[half:]:        # phase B
                c.access(page)
            return (c.hits, c.misses, c.hit_rate, sorted(c.members))

        golden_roots = {"cache": cache}
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)

    def test_protocol_stack_fork_matches_golden(self):
        """The command-accurate DDR stack with the refresh loop armed."""
        def build():
            engine = Engine()
            device = DRAMDevice(NVDIMMC_1600, capacity_bytes=mb(4))
            bus = SharedBus(NVDIMMC_1600, device, raise_on_collision=True)
            imc = IntegratedMemoryController(engine, NVDIMMC_1600, bus)
            agent = NVMCProtocolAgent(NVDIMMC_1600, bus,
                                      respect_windows=True)
            imc.start_refresh_process()
            t = us(1)
            # Phase A: host writes plus agent traffic across refreshes.
            for i in range(4):
                t = imc.host_write(i * PAGE_4K, bytes([i + 1]) * PAGE_4K, t)
                agent.queue_write((16 + i) * PAGE_4K, bytes([i]) * PAGE_4K)
            engine.run(until=t + us(200))
            return {"engine": engine, "device": device, "bus": bus,
                    "imc": imc, "agent": agent, "t": t}

        def measure(roots):
            imc, engine, t = roots["imc"], roots["engine"], roots["t"]
            ends = []
            for i in range(4):               # phase B
                data, t = imc.host_read(i * PAGE_4K, PAGE_4K, t + us(1))
                ends.append((data[0], t))
                t = imc.host_write((4 + i) * PAGE_4K,
                                   bytes([0xA0 + i]) * PAGE_4K, t)
                ends.append(t)
            engine.run(until=t + us(500))
            return (ends, engine.now, imc.refreshes_issued,
                    roots["bus"].collision_count,
                    roots["agent"].stats.bytes_written,
                    roots["device"].peek(0, PAGE_4K))

        golden_roots = build()
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)


def _note(log, tag):
    """Module-level callback target: picklable via ``partial``."""
    log.append(tag)


class TestEngineRoundtrip:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_heap_survives_snapshot(self, delays):
        """A restored engine drains its heap in the exact golden order,
        including ties (heap sequence numbers ride along in the blob)."""
        def build():
            eng = Engine()
            log = []
            for i, delay in enumerate(delays):
                eng.call_after(delay, partial(_note, log, i))
            return {"engine": eng, "log": log}

        def drain(roots):
            roots["engine"].run()
            return roots["log"]

        golden_roots = build()
        forked_roots = fork(golden_roots)
        assert drain(golden_roots) == drain(forked_roots)


def _tiny_ftl(logical_blocks=8, pages_per_block=16, blocks=24):
    spec = ZNANDSpec(
        name="test", capacity_bytes=blocks * pages_per_block * kb(4),
        page_bytes=kb(4), pages_per_block=pages_per_block,
        planes_per_die=1, dies=1, initial_bad_block_ppm=0)
    return FlashTranslationLayer([NANDDie(spec, die_index=0)],
                                 logical_blocks * pages_per_block * kb(4))


class TestFTLRoundtrip:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=120),
           st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_fork_continues_identically(self, lpns, seed):
        """Writes applied after the fork land on the same physical
        pages and keep the same mapping as the golden FTL — GC, wear
        accounting and free lists all travel through the blob."""
        ftl = _tiny_ftl()
        for i, lpn in enumerate(lpns):       # phase A
            ftl.write_page(lpn, bytes([i % 256]) * kb(4))

        def measure(roots):
            f = roots["ftl"]
            rng = random.Random(seed)
            outcomes = []
            for _ in range(40):              # phase B
                lpn = rng.randrange(64)
                ppa, _ = f.write_page(lpn, bytes([rng.randrange(256)]) * kb(4))
                outcomes.append((lpn, repr(ppa)))
            reads = [(lpn, f.read_page(lpn)[0][0]) for lpn in set(lpns)]
            return (outcomes, sorted(reads), f.free_blocks,
                    f.mapped_pages)

        golden_roots = {"ftl": ftl}
        forked_roots = fork(golden_roots)
        assert measure(golden_roots) == measure(forked_roots)


class TestHarnessByteIdentity:
    """Snapshot mode and legacy rerun-from-zero emit identical reports."""

    def test_soak_snapshot_matches_legacy(self):
        fast = run_soak(seed=2, quick=True, snapshot=True)
        slow = run_soak(seed=2, quick=True, snapshot=False)
        assert (json.dumps(fast.to_dict(), sort_keys=True)
                == json.dumps(slow.to_dict(), sort_keys=True))

    def test_crash_snapshot_matches_legacy(self, monkeypatch):
        # Scale the workload down: the constants are read at call time.
        monkeypatch.setattr(explorer_mod, "FOOTPRINT_PAGES", 8)
        monkeypatch.setattr(explorer_mod, "MIXED_STEPS", 48)
        fast = explore(seed=1, quick=True, snapshot=True)
        slow = explore(seed=1, quick=True, snapshot=False)
        assert (json.dumps(fast.to_dict(), sort_keys=True)
                == json.dumps(slow.to_dict(), sort_keys=True))
