"""Tests for the composed systems: NVDIMM-C, pmem baseline, hypothetical."""

import pytest

from repro.device.hypothetical import HypotheticalSystem
from repro.device.nvdimmc import NVDIMMCSystem, PmemSystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, kb, mb, us


def nvdc_system(**kwargs):
    defaults = dict(cache_bytes=mb(2), device_bytes=mb(32))
    defaults.update(kwargs)
    return NVDIMMCSystem(**defaults)


class TestNvdcOps:
    def test_first_op_misses_then_hits(self):
        system = nvdc_system()
        end1 = system.op(0, kb(4), is_write=False, now_ps=0)
        start2 = end1
        end2 = system.op(0, kb(4), is_write=False, now_ps=start2)
        miss_latency = end1
        hit_latency = end2 - start2
        assert miss_latency > 10 * hit_latency
        assert system.driver.stats.misses == 1
        assert system.driver.stats.hits == 1

    def test_cached_hit_latency_matches_model(self):
        system = nvdc_system()
        system.op(0, kb(4), False, 0)   # fault it in
        t0 = system.op(0, kb(4), False, us(1000)) - us(1000)
        cost = system.cost_model.cached_cost(kb(4), False)
        assert t0 == pytest.approx(cost.total_ps, rel=0.01)

    def test_multi_page_op_faults_each_page(self):
        system = nvdc_system()
        system.op(0, kb(64), False, 0)
        assert system.driver.stats.misses == 16

    def test_write_dirties_page(self):
        system = nvdc_system(conservative_dirty=False)
        system.op(0, kb(4), True, 0)
        slot = system.driver.page_to_slot[0]
        assert slot in system.driver.dirty_slots

    def test_paper_scale_constructor(self):
        system = NVDIMMCSystem.paper_scale(scale=1024)
        assert system.capacity_bytes == (120 << 30) // 1024
        # cache:device ratio preserved (16:120)
        ratio = system.region.size_bytes / system.capacity_bytes
        assert ratio == pytest.approx(16 / 120, rel=0.01)


class TestPmemOps:
    def test_never_misses(self):
        system = PmemSystem(device_bytes=mb(32))
        for i in range(10):
            system.op(i * PAGE_4K, kb(4), False, 0)
        assert system.driver.accesses == 0   # op() needs no device_access

    def test_faster_than_nvdc_at_4kb(self):
        pmem = PmemSystem(device_bytes=mb(32))
        nvdc = nvdc_system()
        nvdc.op(0, kb(4), False, 0)
        t_pmem = pmem.op(0, kb(4), False, us(100)) - us(100)
        t_nvdc = nvdc.op(0, kb(4), False, us(10**6)) - us(10**6)
        assert t_pmem < t_nvdc

    def test_slower_than_nvdc_at_128b(self):
        """Fig. 10: the 1.15x small-access inversion."""
        pmem = PmemSystem(device_bytes=mb(32))
        nvdc = nvdc_system()
        nvdc.op(0, 128, False, 0)
        t_pmem = pmem.op(0, 128, False, us(100)) - us(100)
        t_nvdc = nvdc.op(0, 128, False, us(10**6)) - us(10**6)
        assert t_nvdc < t_pmem


class TestHypothetical:
    def test_td_zero_is_sw_only(self):
        hypo = HypotheticalSystem(td_ps=0)
        bw = hypo.uncached_bandwidth_mb_s()
        assert bw == pytest.approx(1506, rel=0.02)   # paper: 1503

    @pytest.mark.parametrize("td_us,paper_mb_s", [
        (7.8, 451), (3.9, 681), (1.85, 914),
    ])
    def test_fig12_points(self, td_us, paper_mb_s):
        hypo = HypotheticalSystem(td_ps=us(td_us))
        assert hypo.uncached_bandwidth_mb_s() == pytest.approx(
            paper_mb_s, rel=0.08)

    def test_monotone_in_td(self):
        values = [HypotheticalSystem(us(td)).uncached_bandwidth_mb_s()
                  for td in (0, 1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_op_advances_time(self):
        hypo = HypotheticalSystem(td_ps=us(1.85))
        end = hypo.op(0, kb(4), False, 0)
        assert end == hypo.miss_latency_ps

    def test_negative_td_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            HypotheticalSystem(td_ps=-1)


class TestUncachedSingleThread:
    def test_uncached_read_near_paper(self):
        """§VII-B2: ~57.3 MB/s for 4 KB uncached reads (full cache,
        conservative dirty tracking -> writeback+cachefill pairs)."""
        system = nvdc_system(firmware=FirmwareModel())
        nslots = system.region.num_slots
        n = 40
        # The FIO file is preconditioned: uncached pages live in NAND.
        for page in range(nslots, nslots + n):
            system.nand.preload(page, b"\x11" * PAGE_4K)
        t = 0
        for page in range(nslots):   # fill the cache
            _, t = system.driver.fault(page, t, True)
        # Steady-state misses.
        start = t
        for i in range(n):
            t = system.op((nslots + i) * PAGE_4K, kb(4), False, t)
        bandwidth = (n * kb(4) / 1e6) / ((t - start) / 1e12)
        assert 48 <= bandwidth <= 68   # paper: 57.3; model: 58.3
