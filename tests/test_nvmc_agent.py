"""Tests for the command-accurate NVMC agent on the real shared bus.

These exercise the paper's core claim end to end: with the tRFC rule the
two masters share the channel with zero collisions; without it the bus
corrupts immediately.
"""

import pytest

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.sim import Engine
from repro.units import mb, us

SPEC = NVDIMMC_1600


def make_system(respect_windows=True, raise_on_collision=True):
    engine = Engine()
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device, raise_on_collision=raise_on_collision)
    imc = IntegratedMemoryController(engine, SPEC, bus)
    agent = NVMCProtocolAgent(SPEC, bus, respect_windows=respect_windows)
    imc.start_refresh_process()
    return engine, device, bus, imc, agent


class TestWindowedTransfers:
    def test_agent_write_lands_in_dram(self):
        engine, device, _bus, _imc, agent = make_system()
        payload = bytes(range(256)) * 16
        transfer = agent.queue_write(0, payload)
        engine.run(until=us(20))
        assert transfer.done
        assert device.peek(0, 4096) == payload

    def test_agent_read_returns_dram_contents(self):
        engine, device, _bus, _imc, agent = make_system()
        device.poke(8192, b"\xbe" * 4096)
        transfer = agent.queue_read(8192, 4096)
        engine.run(until=us(20))
        assert transfer.done
        assert transfer.result == b"\xbe" * 4096

    def test_transfer_happens_inside_window(self):
        engine, _device, _bus, imc, agent = make_system()
        transfer = agent.queue_write(0, bytes(4096))
        engine.run(until=us(20))
        window = imc.timeline.window(0)
        assert window.start_ps <= transfer.completed_ps <= window.end_ps

    def test_backlog_drains_one_page_per_window(self):
        engine, _device, _bus, imc, agent = make_system()
        transfers = [agent.queue_write(i * 4096, bytes([i]) * 4096)
                     for i in range(3)]
        engine.run(until=us(30))
        completed = [t for t in transfers if t.done]
        assert len(completed) == 3
        windows = {imc.timeline.window_containing(t.completed_ps).index
                   for t in completed}
        assert windows == {0, 1, 2}

    def test_small_transfers_share_a_window(self):
        engine, _device, _bus, imc, agent = make_system()
        transfers = [agent.queue_write(i * 64, bytes([i]) * 64)
                     for i in range(4)]
        engine.run(until=us(20))
        assert all(t.done for t in transfers)
        first = imc.timeline.window(0)
        assert all(t.completed_ps <= first.end_ps for t in transfers)


class TestCollisionFreedom:
    def test_interleaved_host_and_device_traffic_no_collisions(self):
        """Host reads around refreshes + device 4 KB per window: the
        mechanism must keep the channel collision-free."""
        engine, device, bus, imc, agent = make_system()
        for i in range(40):
            agent.queue_write(i * 4096, bytes([i]) * 4096)
        t = 0
        for i in range(200):
            _, t = imc.host_read((i % 512) * 64, 64, t + us(1.5))
        engine.run(until=us(400))
        assert bus.collision_count == 0
        assert agent.backlog == 0
        for i in range(40):
            assert device.peek(i * 4096, 1) == bytes([i])

    @pytest.mark.sanitizer_exempt
    def test_rogue_agent_collides(self):
        """Without the rule, driving after REF collides with... the
        refresh blackout itself or host traffic."""
        engine, _device, bus, imc, agent = make_system(
            respect_windows=False, raise_on_collision=False)
        agent.queue_write(0, bytes(4096))
        from repro.errors import ProtocolError
        t = 0
        try:
            for i in range(40):
                _, t = imc.host_read((i % 512) * 64, 64, t + us(1))
            engine.run(until=us(40))
        except ProtocolError:
            pass   # rogue access during refresh is itself a violation
        assert bus.collision_count > 0 or agent.stats.rule_violations > 0


class TestDetectorIntegration:
    def test_detector_sees_every_imc_refresh(self):
        engine, _device, _bus, imc, agent = make_system()
        engine.run(until=us(80))
        assert len(agent.detector.detections) == imc.refreshes_issued
        assert agent.detector.false_positives == 0
        assert agent.detector.false_negatives == 0
