"""Tests for the FIO-like job engine."""

import pytest

from repro.device.nvdimmc import NVDIMMCSystem, PmemSystem
from repro.errors import ConfigError
from repro.workloads.fio import FIOJob, FIORunner
from repro.units import kb, mb


def pmem():
    return PmemSystem(device_bytes=mb(64))


def nvdc():
    return NVDIMMCSystem(cache_bytes=mb(64), device_bytes=mb(128))


class TestJobSpec:
    def test_defaults(self):
        job = FIOJob()
        assert job.rw == "randread"
        assert job.total_ops == 1000

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            FIOJob(rw="randomread")

    def test_bad_bs_rejected(self):
        with pytest.raises(ConfigError):
            FIOJob(bs=0)
        with pytest.raises(ConfigError):
            FIOJob(bs=mb(1), size=kb(4))

    def test_is_random(self):
        assert FIOJob(rw="randwrite").is_random
        assert not FIOJob(rw="read").is_random


class TestRunner:
    def test_result_units(self):
        result = FIORunner(pmem()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(8), nops=500))
        assert result.total_ops == 500
        assert result.total_bytes == 500 * kb(4)
        assert result.iops > 0
        assert result.bandwidth_mb_s > 0
        assert result.latency.count == 500

    def test_sequential_wraps_and_strides(self):
        system = pmem()
        result = FIORunner(system).run(
            FIOJob(rw="read", bs=kb(4), size=kb(16), nops=10))
        assert result.total_ops == 10

    def test_multithread_throughput_exceeds_single(self):
        r1 = FIORunner(pmem()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(8), numjobs=1, nops=800))
        r4 = FIORunner(pmem()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(8), numjobs=4, nops=800))
        assert r4.iops > 2 * r1.iops

    def test_warmup_prefaults_footprint(self):
        system = nvdc()
        FIORunner(system).run(FIOJob(rw="randread", bs=kb(4), size=mb(8),
                                     nops=200))
        # All misses happened during warmup; measured ops all hit.
        assert system.driver.stats.misses == mb(8) // kb(4)
        assert system.driver.stats.hits >= 200

    def test_no_warmup_measures_cold_misses(self):
        system = nvdc()
        result = FIORunner(system).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(8), nops=100),
            warmup=False)
        assert system.driver.stats.misses > 0
        assert result.latency.max_ps > 5 * result.latency.min_ps

    def test_deterministic_given_seed(self):
        def once():
            return FIORunner(pmem()).run(
                FIOJob(rw="randrw", bs=kb(4), size=mb(8), nops=300,
                       seed=99)).span_ps
        assert once() == once()

    def test_rwmix_respected_roughly(self):
        system = nvdc()
        FIORunner(system).run(
            FIOJob(rw="randrw", bs=kb(4), size=mb(8), nops=2000,
                   rwmixread=70))
        # ~30 % writes dirty their pages.
        dirty = len(system.driver.dirty_slots)
        assert dirty > 0

    def test_runs_reusing_a_system_stay_sane(self):
        """Back-to-back runs must not inherit queueing delay."""
        system = nvdc()
        runner = FIORunner(system)
        job = FIOJob(rw="randread", bs=kb(4), size=mb(8), nops=500)
        bw1 = runner.run(job).bandwidth_mb_s
        bw2 = runner.run(job).bandwidth_mb_s
        assert bw2 == pytest.approx(bw1, rel=0.05)


class TestPaperAnchors:
    def test_fig8_baseline_read(self):
        result = FIORunner(pmem()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(32), nops=2000))
        assert result.kiops == pytest.approx(646, rel=0.07)

    def test_fig8_nvdc_cached_read(self):
        result = FIORunner(nvdc()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(32), nops=2000))
        assert result.bandwidth_mb_s == pytest.approx(1835, rel=0.07)

    def test_fig9_saturation_caps(self):
        r = FIORunner(nvdc()).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(32), numjobs=8,
                   nops=1000))
        assert r.bandwidth_mb_s == pytest.approx(4341, rel=0.07)
