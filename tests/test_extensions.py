"""Tests for the extension modules: devdax, arbitration, variants,
design space."""

import pytest

from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU
from repro.device.arbitration import (DummyAccessScheme,
                                      PriorityPreemptScheme, TRFCScheme)
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.device.variants import (all_variants,
                                   compatible_and_byte_addressable_and_dense,
                                   nvdimm_c, nvdimm_n)
from repro.errors import KernelError
from repro.experiments.design_space import (max_programmable_budget_ps,
                                            TECHNOLOGIES)
from repro.ddr.spec import GRADE_2400
from repro.kernel.devdax import DevDaxDevice
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def make_devdax():
    system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                           with_cpu_cache=True,
                           firmware=FirmwareModel(step_ps=0),
                           conservative_dirty=False)
    dax = DevDaxDevice(system.driver)
    mmu = MMU()
    core = CPUCore(0, mmu, system.cpu_cache)
    return system, dax, mmu, core


class TestDevDax:
    def test_mmap_and_store_load(self):
        system, dax, mmu, core = make_devdax()
        dax.mmap(mmu, vaddr=0x40000000)
        core.store(0x40000000 + 100, b"devdax!")
        assert core.load(0x40000000 + 100, 7) == b"devdax!"
        assert dax.fault_count == 1

    def test_unaligned_mmap_rejected(self):
        _sys, dax, mmu, _core = make_devdax()
        with pytest.raises(KernelError):
            dax.mmap(mmu, vaddr=123)

    def test_oversized_mapping_rejected(self):
        _sys, dax, mmu, _core = make_devdax()
        with pytest.raises(KernelError):
            dax.mmap(mmu, vaddr=0, length=mb(64))

    def test_persist_marks_pages_dirty(self):
        system, dax, mmu, core = make_devdax()
        dax.mmap(mmu, vaddr=0x40000000)
        core.store(0x40000000, b"x" * 64)
        dax.persist(core, 0x40000000, 64)
        slot = system.driver.page_to_slot[0]
        assert slot in system.driver.dirty_slots

    def test_persisted_data_survives_power_failure(self):
        """The §V-C future-work promise: user-managed durability."""
        system, dax, mmu, core = make_devdax()
        dax.mmap(mmu, vaddr=0x40000000)
        payload = b"durable-record" * 4
        core.store(0x40000000 + PAGE_4K, payload)
        dax.persist(core, 0x40000000 + PAGE_4K, len(payload))
        power = PowerFailureModel(system.driver)
        power.power_fail()
        recovered = power.recover().read_page(1)
        assert recovered[:len(payload)] == payload

    def test_unpersisted_store_may_be_lost(self):
        """Without the clflush ritual, data stuck in the CPU cache does
        not reach the persistence domain."""
        system, dax, mmu, core = make_devdax()
        dax.mmap(mmu, vaddr=0x40000000)
        payload = b"volatile" * 8
        core.store(0x40000000 + PAGE_4K, payload)   # no persist()
        power = PowerFailureModel(system.driver)
        power.power_fail()
        recovered = power.recover().read_page(1)
        assert recovered[:len(payload)] != payload


class TestArbitrationSchemes:
    def test_trfc_ceiling_matches_paper(self):
        assert TRFCScheme().device_ceiling_mb_s() == pytest.approx(
            500.8, abs=1.0)

    def test_trfc_ceiling_scales_with_window_bytes(self):
        wide = TRFCScheme(window_bytes=8192)
        assert wide.device_ceiling_mb_s() == pytest.approx(1001.6, abs=2)

    def test_dummy_access_validation(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            DummyAccessScheme(dummy_write_mb_s=-1)
        # ConfigError is still a ValueError for pre-taxonomy callers.
        with pytest.raises(ValueError):
            DummyAccessScheme(dummy_write_mb_s=20_000)

    def test_dummy_access_costs_host_one_for_one(self):
        profile = DummyAccessScheme(1000, channel_mb_s=10_000).profile()
        assert profile.device_ceiling_mb_s == 1000
        assert profile.host_bandwidth_share == pytest.approx(0.9)
        assert profile.capacity_efficiency == 0.5

    def test_preempt_starves_under_load(self):
        busy = PriorityPreemptScheme(host_utilization=1.0).profile()
        assert busy.device_ceiling_mb_s == 0.0
        idle = PriorityPreemptScheme(host_utilization=0.0).profile()
        assert idle.device_ceiling_mb_s > 0
        assert not busy.guaranteed_device_progress

    def test_only_trfc_guarantees_progress_at_full_capacity(self):
        trfc = TRFCScheme().profile()
        assert trfc.guaranteed_device_progress
        assert trfc.capacity_efficiency == 1.0


class TestDesignSpace:
    def test_budget_is_51_6ns(self):
        assert max_programmable_budget_ps(GRADE_2400) / 1000 == (
            pytest.approx(51.6, abs=0.3))

    def test_only_stt_mram_fits(self):
        budget = max_programmable_budget_ps(GRADE_2400)
        fitting = [t.name for t in TECHNOLOGIES
                   if t.read_latency_ps <= budget]
        assert fitting == ["STT-MRAM"]


class TestVariants:
    def test_four_variants(self):
        assert len(all_variants()) == 4

    def test_selection_picks_nvdimm_c(self):
        winners = compatible_and_byte_addressable_and_dense()
        assert [v.name for v in winners] == ["NVDIMM-C"]

    def test_nvdimm_n_holdup_scales_with_dram(self):
        small = nvdimm_n(dram_bytes=mb(512) * 2)
        big = nvdimm_n()
        assert big.backup_energy_window_s > small.backup_energy_window_s

    def test_nvdimm_c_capacity_exceeds_its_dram(self):
        c = nvdimm_c()
        assert c.capacity_bytes > 16 * (1 << 30) / 2
