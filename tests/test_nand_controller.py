"""Tests for the NAND channel controller: timing, channels, ECC overlay."""


from repro.nand.controller import NANDController
from repro.nand.spec import ZNANDSpec
from repro.units import kb, us


def make_controller(channels=2, dies_total=4, firmware_overhead_ps=0):
    spec = ZNANDSpec(
        name="test", capacity_bytes=64 * 16 * kb(4),
        page_bytes=kb(4), pages_per_block=16, planes_per_die=1,
        dies=1, initial_bad_block_ppm=0)
    return NANDController(
        spec, logical_capacity_bytes=24 * 16 * kb(4), channels=channels,
        dies_total=dies_total, firmware_overhead_ps=firmware_overhead_ps)


PAGE = bytes(range(256)) * 16


class TestLogicalOps:
    def test_program_then_read_round_trip(self):
        ctrl = make_controller()
        end = ctrl.program_page(5, PAGE, 0)
        assert end > 0
        data, _ = ctrl.read_page(5, end)
        assert data == PAGE

    def test_unwritten_page_reads_none_instantly(self):
        ctrl = make_controller()
        data, end = ctrl.read_page(9, 123)
        assert data is None
        assert end == 123

    def test_trim(self):
        ctrl = make_controller()
        ctrl.program_page(2, PAGE, 0)
        ctrl.trim(2)
        data, _ = ctrl.read_page(2, 0)
        assert data is None


class TestTiming:
    def test_read_takes_tr_plus_transfer(self):
        ctrl = make_controller()
        end_prog = ctrl.program_page(0, PAGE, 0)
        data, end = ctrl.read_page(0, end_prog)
        assert end - end_prog == ctrl.spec.read_ps

    def test_program_takes_tprog_plus_transfer(self):
        ctrl = make_controller()
        end = ctrl.program_page(0, PAGE, 0)
        assert end == ctrl.spec.program_ps

    def test_same_die_programs_serialise_on_the_array(self):
        """Two programs to one die: the second's array time queues
        behind the first's (tPROG is per-die)."""
        ctrl = make_controller(channels=1, dies_total=1)
        end1 = ctrl.program_page(0, PAGE, 0)
        end2 = ctrl.program_page(1, PAGE, 0)
        assert end2 >= end1 + ctrl.spec.tprog_ps

    def test_same_channel_bus_serialises_transfers_only(self):
        """Different dies, one channel: transfers queue on the bus but
        the array programs overlap (the bus is released during tPROG)."""
        ctrl = make_controller(channels=1, dies_total=2)
        end1 = ctrl.program_page(0, PAGE, 0)
        end2 = ctrl.program_page(1, PAGE, 0)
        assert end2 == end1 + ctrl.spec.transfer_ps_per_page

    def test_channels_overlap(self):
        """Programs striped over two channels overlap in time."""
        ctrl = make_controller(channels=2, dies_total=2)
        end1 = ctrl.program_page(0, PAGE, 0)
        end2 = ctrl.program_page(1, PAGE, 0)
        assert end2 == end1   # distinct channels, same duration

    def test_read_suspends_program(self):
        """Z-NAND program suspend: a read is not delayed by a program
        in flight on the same die."""
        ctrl = make_controller(channels=1, dies_total=1)
        ctrl.preload(0, PAGE)
        end_prog = ctrl.program_page(1, PAGE, 0)
        _, end_read = ctrl.read_page(0, 0)
        assert end_read < end_prog

    def test_firmware_overhead_added(self):
        base = make_controller()
        slow = make_controller(firmware_overhead_ps=us(5))
        end_base = base.program_page(0, PAGE, 0)
        end_slow = slow.program_page(0, PAGE, 0)
        assert end_slow - end_base == us(5)


class TestECCIntegration:
    def test_ecc_runs_on_every_read(self):
        ctrl = make_controller()
        end = ctrl.program_page(0, PAGE, 0)
        ctrl.read_page(0, end)
        ctrl.read_page(0, end)
        assert ctrl.codec.stats.decoded == 2

    def test_counters(self):
        ctrl = make_controller()
        end = ctrl.program_page(0, PAGE, 0)
        ctrl.read_page(0, end)
        assert ctrl.stats.page_programs == 1
        assert ctrl.stats.page_reads == 1


class TestCapacity:
    def test_logical_capacity(self):
        ctrl = make_controller()
        assert ctrl.logical_capacity_bytes == 24 * 16 * kb(4)

    def test_paper_configuration_is_buildable(self):
        """Two 64 GB packages exposing 120 GB (§VI) — mapping only."""
        from repro.nand.spec import ZNAND_64GB
        # Don't allocate real data; just verify the geometry arithmetic.
        raw = ZNAND_64GB.capacity_bytes * 2
        logical = 120 << 30
        assert logical < raw
