"""Property tests over the DDR4 CA encoding (hypothesis).

The encode/classify pair is the contract between the bus model and the
NVMC's pin-level refresh detector (§IV-A): every command kind must
round-trip (modulo the A10 aliases the detector cannot see), and the
RTL refresh predicate must agree with the full decoder on *every*
reachable pin state.
"""

from hypothesis import given, strategies as st

import pytest

from repro.ddr.commands import (CAState, CommandKind, classify, encode,
                                is_refresh_state)
from repro.errors import ProtocolError

#: A10-aliased pairs: the detector does not monitor A10, so the
#: auto-precharge member decodes to its plain sibling.
ALIASES = {
    CommandKind.RDA: CommandKind.RD,
    CommandKind.WRA: CommandKind.WR,
    CommandKind.PREA: CommandKind.PRE,
}

kinds = st.sampled_from(list(CommandKind))
bits = st.booleans()
pin_states = st.builds(CAState, cke=bits, cs_n=bits, act_n=bits,
                       ras_n=bits, cas_n=bits, we_n=bits, cke_prev=bits)


@given(kinds)
def test_encode_classify_roundtrip(kind):
    assert classify(encode(kind)) == ALIASES.get(kind, kind)


@given(kinds)
def test_refresh_detector_matches_decoder_on_commands(kind):
    """The RTL predicate fires exactly on the decoded-REF encodings."""
    state = encode(kind)
    assert is_refresh_state(state) == (classify(state) is CommandKind.REF)


@given(pin_states)
def test_refresh_detector_matches_decoder_on_all_pin_states(state):
    """Against arbitrary pin soup: whenever the full decoder can decode
    a state at all, the six-pin refresh match agrees with it — and a
    refresh match implies the state is decodable (no false triggers on
    illegal encodings, §IV-A)."""
    try:
        kind = classify(state)
    except ProtocolError:
        assert not is_refresh_state(state)
        return
    assert is_refresh_state(state) == (kind is CommandKind.REF)


@given(pin_states)
def test_classify_total_or_protocol_error(state):
    """classify() never raises anything but ProtocolError."""
    try:
        kind = classify(state)
    except ProtocolError:
        return
    assert isinstance(kind, CommandKind)


@given(kinds)
def test_encodings_keep_cke_history_consistent(kind):
    """Only the CKE-transition commands may differ from steady-CKE."""
    state = encode(kind)
    if kind is CommandKind.SRE:
        assert state.cke_prev and not state.cke
    elif kind is CommandKind.SRX:
        assert state.cke and not state.cke_prev
    else:
        assert state.cke and state.cke_prev


def test_pins_order_is_board_routing_order():
    state = encode(CommandKind.REF)
    assert state.pins() == (state.cke, state.cs_n, state.act_n,
                            state.ras_n, state.cas_n, state.we_n)


@pytest.mark.parametrize("kind", [CommandKind.SRE, CommandKind.SRX,
                                  CommandKind.DES, CommandKind.MRS])
def test_near_miss_encodings_do_not_trigger_detector(kind):
    """SRE shares REF's pin levels (CKE falling) and must not match."""
    assert not is_refresh_state(encode(kind))
