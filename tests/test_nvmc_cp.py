"""Tests for the CP command format and mailbox area."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CPProtocolError
from repro.nvmc.cp import CPAck, CPArea, CPCommand, Opcode, Phase


class TestEncoding:
    def test_round_trip(self):
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                        dram_slot=12345, nand_page=999_999)
        assert CPCommand.decode(cmd.encode()) == cmd

    def test_word_is_64_bits(self):
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK,
                        dram_slot=(1 << 28) - 1, nand_page=(1 << 28) - 1)
        assert cmd.encode() < (1 << 64)

    def test_field_overflow_rejected(self):
        with pytest.raises(CPProtocolError):
            CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                      dram_slot=1 << 28).encode()
        with pytest.raises(CPProtocolError):
            CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                      nand_page=1 << 28).encode()

    def test_unknown_opcode_rejected_on_decode(self):
        with pytest.raises(CPProtocolError):
            CPCommand.decode(0xF << 56)

    @given(st.sampled_from(list(Opcode)), st.integers(0, (1 << 28) - 1),
           st.integers(0, (1 << 28) - 1))
    def test_round_trip_property(self, opcode, slot, page):
        cmd = CPCommand(phase=Phase.EVEN, opcode=opcode,
                        dram_slot=slot, nand_page=page)
        decoded = CPCommand.decode(cmd.encode())
        assert (decoded.opcode, decoded.dram_slot, decoded.nand_page) == (
            opcode, slot, page)

    def test_ack_round_trip(self):
        ack = CPAck(phase=Phase.ODD, status=CPAck.MEDIA_ERROR)
        assert CPAck.decode(ack.encode()) == ack


class TestCPArea:
    def test_post_then_poll(self):
        area = CPArea()
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL,
                        dram_slot=1, nand_page=2)
        area.post(0, cmd)
        assert area.poll_command(0, last_phase=None) == cmd

    def test_same_phase_is_not_a_new_command(self):
        area = CPArea()
        cmd = CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL)
        area.post(0, cmd)
        assert area.poll_command(0, last_phase=Phase.ODD) is None

    def test_phase_must_toggle_between_posts(self):
        area = CPArea()
        area.post(0, CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL))
        with pytest.raises(CPProtocolError):
            area.post(0, CPCommand(phase=Phase.ODD, opcode=Opcode.WRITEBACK))
        area.post(0, CPCommand(phase=Phase.EVEN, opcode=Opcode.WRITEBACK))

    def test_ack_flow(self):
        area = CPArea()
        area.post(0, CPCommand(phase=Phase.ODD, opcode=Opcode.CACHEFILL))
        assert area.poll_ack(0, Phase.ODD) is None
        area.ack(0, CPAck(phase=Phase.ODD))
        ack = area.poll_ack(0, Phase.ODD)
        assert ack is not None and ack.status == CPAck.OK

    def test_stale_ack_not_returned(self):
        area = CPArea()
        area.ack(0, CPAck(phase=Phase.ODD))
        assert area.poll_ack(0, Phase.EVEN) is None

    def test_empty_area_polls_none(self):
        area = CPArea()
        assert area.poll_command(0, last_phase=None) is None
        assert area.poll_ack(0, Phase.ODD) is None

    def test_queue_depth_bounds(self):
        area = CPArea(queue_depth=4)
        for slot in range(4):
            area.post(slot, CPCommand(phase=Phase.ODD,
                                      opcode=Opcode.CACHEFILL,
                                      dram_slot=slot))
        with pytest.raises(CPProtocolError):
            area.post(4, CPCommand(phase=Phase.ODD, opcode=Opcode.NOP))

    def test_depth_limited_by_4kb_area(self):
        # 4 KB / 64 B = 64 cachelines; half commands, half acks.
        CPArea(queue_depth=32)
        with pytest.raises(CPProtocolError):
            CPArea(queue_depth=33)
        with pytest.raises(CPProtocolError):
            CPArea(queue_depth=0)
