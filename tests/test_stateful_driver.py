"""Stateful property test: the nvdc driver vs a reference dict.

Hypothesis drives random sequences of page writes, reads, block I/O and
eviction pressure against a tiny NVDIMM-C system, checking after every
step that the device's observable contents equal a plain dictionary —
across cache hits, evictions, Z-NAND round trips and FTL relocations.
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.device.nvdimmc import NVDIMMCSystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb

NUM_PAGES = 600     # > the ~230 slots of a 1 MB cache


def page_payload(tag: int) -> bytes:
    return tag.to_bytes(4, "little") * (PAGE_4K // 4)


class DriverMachine(RuleBasedStateMachine):
    """Random walks over the driver's public surface."""

    @initialize()
    def setup(self):
        self.system = NVDIMMCSystem(
            cache_bytes=mb(1), device_bytes=mb(32),
            firmware=FirmwareModel(step_ps=0))
        self.driver = self.system.driver
        self.reference: dict[int, bytes] = {}
        self.clock = 0

    def _now(self) -> int:
        self.clock = max(self.clock, self.system.nvmc.ready_ps)
        return self.clock

    @rule(page=st.integers(0, NUM_PAGES - 1), tag=st.integers(0, 2**31))
    def write_page(self, page, tag):
        payload = page_payload(tag)
        self.clock = self.driver.write_page(page, payload, self._now())
        self.reference[page] = payload

    @rule(page=st.integers(0, NUM_PAGES - 1))
    def read_page(self, page):
        data, self.clock = self.driver.read_page(page, self._now())
        expected = self.reference.get(page, bytes(PAGE_4K))
        assert data == expected

    @rule(page=st.integers(0, NUM_PAGES - 1))
    def fault_readonly(self, page):
        if self.driver.lookup(page) is None:
            _slot, self.clock = self.driver.fault(page, self._now(),
                                                  for_write=False)

    @invariant()
    def mapping_is_consistent(self):
        driver = getattr(self, "driver", None)
        if driver is None:
            return
        # page_to_slot and slot_to_page are mutual inverses.
        for page, slot in driver.page_to_slot.items():
            assert driver.slot_to_page[slot] == page
        # No slot is both free and mapped.
        free = set(driver.free_slots)
        assert free.isdisjoint(driver.slot_to_page)
        # Dirty slots are always mapped.
        assert set(driver.dirty_slots) <= set(driver.slot_to_page)

    @invariant()
    def cache_never_overflows(self):
        driver = getattr(self, "driver", None)
        if driver is None:
            return
        assert len(driver.page_to_slot) <= driver.region.num_slots


TestDriverStateMachine = DriverMachine.TestCase
TestDriverStateMachine.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None)
