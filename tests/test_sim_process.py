"""Tests for generator processes, events, and joins."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event, Timeout
from repro.sim.process import spawn


class TestTimeout:
    def test_process_waits_for_timeouts(self):
        eng = Engine()
        trail = []

        def proc():
            trail.append(("start", eng.now))
            yield Timeout(100)
            trail.append(("mid", eng.now))
            yield Timeout(50)
            trail.append(("end", eng.now))

        spawn(eng, proc())
        eng.run()
        assert trail == [("start", 0), ("mid", 100), ("end", 150)]

    def test_timeout_value_is_sent_back(self):
        eng = Engine()
        got = []

        def proc():
            value = yield Timeout(10, value="payload")
            got.append(value)

        spawn(eng, proc())
        eng.run()
        assert got == ["payload"]

    def test_negative_timeout_raises(self):
        with pytest.raises(SimulationError):
            Timeout(-5)

    def test_two_processes_interleave(self):
        eng = Engine()
        trail = []

        def ticker(name, period):
            for _ in range(3):
                yield Timeout(period)
                trail.append((name, eng.now))

        spawn(eng, ticker("fast", 10))
        spawn(eng, ticker("slow", 25))
        eng.run()
        assert trail == [("fast", 10), ("fast", 20), ("slow", 25),
                         ("fast", 30), ("slow", 50), ("slow", 75)]


class TestEvent:
    def test_event_wakes_waiter_with_value(self):
        eng = Engine()
        got = []
        ev = Event(eng)

        def waiter():
            value = yield ev
            got.append((value, eng.now))

        def trigger():
            yield Timeout(200)
            ev.succeed("done")

        spawn(eng, waiter())
        spawn(eng, trigger())
        eng.run()
        assert got == [("done", 200)]

    def test_wait_on_already_triggered_event(self):
        eng = Engine()
        got = []
        ev = Event(eng)
        ev.succeed(7)

        def waiter():
            value = yield ev
            got.append(value)

        spawn(eng, waiter())
        eng.run()
        assert got == [7]

    def test_double_trigger_raises(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_event_wakes_all_waiters(self):
        eng = Engine()
        got = []
        ev = Event(eng)

        def waiter(i):
            value = yield ev
            got.append((i, value))

        for i in range(3):
            spawn(eng, waiter(i))
        eng.call_at(10, lambda: ev.succeed("x"))
        eng.run()
        assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]


class TestJoin:
    def test_join_returns_result(self):
        eng = Engine()
        got = []

        def child():
            yield Timeout(30)
            return 42

        def parent():
            result = yield spawn(eng, child())
            got.append((result, eng.now))

        spawn(eng, parent())
        eng.run()
        assert got == [(42, 30)]

    def test_join_finished_process(self):
        eng = Engine()
        got = []

        def child():
            yield Timeout(1)
            return "early"

        handle = spawn(eng, child())

        def parent():
            yield Timeout(100)
            result = yield handle
            got.append(result)

        spawn(eng, parent())
        eng.run()
        assert got == ["early"]

    def test_interrupt_stops_process(self):
        eng = Engine()
        trail = []

        def proc():
            trail.append("a")
            yield Timeout(100)
            trail.append("b")  # never reached

        handle = spawn(eng, proc())
        eng.call_at(50, handle.interrupt)
        eng.run()
        assert trail == ["a"]
        assert handle.finished

    def test_yield_garbage_raises_inside_process(self):
        eng = Engine()

        def proc():
            yield "not a waitable"

        spawn(eng, proc())
        with pytest.raises(SimulationError):
            eng.run()
