"""Tests for SystemConfig and the generic access-trace module."""

import pytest

from repro.config import (ASIC_CONFIG, EXPERIMENT_CONFIG, PAPER_CONFIG,
                          SystemConfig)
from repro.errors import ConfigError
from repro.units import PAGE_4K, gb, kb, mb
from repro.workloads.trace import Access, AccessTrace


class TestSystemConfig:
    def test_paper_config_is_table1(self):
        assert PAPER_CONFIG.cache_bytes == gb(16)
        assert PAPER_CONFIG.device_bytes == gb(120)
        assert PAPER_CONFIG.policy == "lrc"
        assert PAPER_CONFIG.cp_queue_depth == 1

    def test_scaled_preserves_ratio(self):
        scaled = PAPER_CONFIG.scaled(512)
        assert (scaled.cache_bytes / scaled.device_bytes
                == pytest.approx(16 / 120))
        assert scaled.spec is PAPER_CONFIG.spec

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ConfigError):
            PAPER_CONFIG.scaled(0)

    def test_cache_larger_than_device_rejected(self):
        bad = SystemConfig(cache_bytes=gb(16), device_bytes=gb(8))
        with pytest.raises(ConfigError):
            bad.validate()

    def test_build_experiment_scale(self):
        system = EXPERIMENT_CONFIG.scaled(4).build()
        assert system.capacity_bytes == gb(120) // 1024
        end = system.op(0, kb(4), False, 0)
        assert end > 0

    def test_asic_config_is_faster_uncached(self):
        assert ASIC_CONFIG.firmware_step_ps == 0
        assert ASIC_CONFIG.nand_phy_mhz == 500
        assert ASIC_CONFIG.use_merged_commands


class TestAccessTrace:
    def test_append_and_iterate(self):
        trace = AccessTrace()
        trace.append(0, kb(4), False)
        trace.append(kb(4), 64, True)
        assert len(trace) == 2
        assert trace.bytes_total == kb(4) + 64
        assert trace.write_fraction == 0.5

    def test_bad_access_rejected(self):
        trace = AccessTrace()
        with pytest.raises(ConfigError):
            trace.append(-1, 64, False)
        with pytest.raises(ConfigError):
            trace.append(0, 0, False)

    def test_pages_covered(self):
        access = Access(offset=PAGE_4K - 10, nbytes=20, is_write=False)
        assert list(access.pages()) == [0, 1]

    def test_footprint(self):
        trace = AccessTrace([Access(0, 64, False),
                             Access(100, 64, False),
                             Access(PAGE_4K, 64, True)])
        assert trace.footprint_pages() == 2

    def test_serialise_round_trip(self):
        trace = AccessTrace([Access(0, 4096, False),
                             Access(8192, 512, True)])
        text = trace.dumps()
        loaded = AccessTrace.loads(text)
        assert loaded.accesses == trace.accesses

    def test_loads_skips_comments_and_blanks(self):
        text = "# header\n\nR 0 64\nW 64 64\n"
        trace = AccessTrace.loads(text)
        assert len(trace) == 2

    def test_loads_rejects_garbage(self):
        with pytest.raises(ConfigError):
            AccessTrace.loads("X 0 64")
        with pytest.raises(ConfigError):
            AccessTrace.loads("R 0")

    def test_replay_on_pmem(self):
        from repro.device.nvdimmc import PmemSystem
        system = PmemSystem(device_bytes=mb(32))
        trace = AccessTrace([Access(i * PAGE_4K, kb(4), False)
                             for i in range(10)])
        end = trace.replay(system)
        assert end > 0
        # Deterministic: same trace, fresh system, same time.
        assert AccessTrace.loads(trace.dumps()).replay(
            PmemSystem(device_bytes=mb(32))) == end
