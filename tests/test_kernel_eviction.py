"""Tests for LRC / LRU / CLOCK replacement policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernel.eviction import (ClockPolicy, LRCPolicy, LRUPolicy,
                                   make_policy)


class TestLRC:
    def test_victim_is_oldest_cached(self):
        lrc = LRCPolicy()
        for slot in (3, 1, 2):
            lrc.on_cached(slot)
        assert lrc.pick_victim() == 3
        assert lrc.pick_victim() == 1

    def test_access_does_not_change_order(self):
        """LRC ignores recency of use — the §IV-B behaviour that makes
        TPC-H thrash."""
        lrc = LRCPolicy()
        lrc.on_cached(1)
        lrc.on_cached(2)
        lrc.on_access(1)   # heavily used...
        lrc.on_access(1)
        assert lrc.pick_victim() == 1   # ...still evicted first

    def test_remove(self):
        lrc = LRCPolicy()
        lrc.on_cached(1)
        lrc.on_cached(2)
        lrc.remove(1)
        assert lrc.pick_victim() == 2
        assert len(lrc) == 0

    def test_double_cache_rejected(self):
        lrc = LRCPolicy()
        lrc.on_cached(1)
        with pytest.raises(KernelError):
            lrc.on_cached(1)

    def test_empty_pick_raises(self):
        with pytest.raises(KernelError):
            LRCPolicy().pick_victim()


class TestLRU:
    def test_access_promotes(self):
        lru = LRUPolicy()
        lru.on_cached(1)
        lru.on_cached(2)
        lru.on_access(1)
        assert lru.pick_victim() == 2

    def test_victim_order_without_access(self):
        lru = LRUPolicy()
        for slot in (5, 6, 7):
            lru.on_cached(slot)
        assert [lru.pick_victim() for _ in range(3)] == [5, 6, 7]

    def test_remove(self):
        lru = LRUPolicy()
        lru.on_cached(1)
        lru.remove(1)
        with pytest.raises(KernelError):
            lru.pick_victim()


class TestClock:
    def test_unreferenced_evicted_first(self):
        clock = ClockPolicy()
        clock.on_cached(1)
        clock.on_cached(2)
        clock.on_access(1)
        assert clock.pick_victim() == 2

    def test_second_chance(self):
        clock = ClockPolicy()
        for slot in (1, 2, 3):
            clock.on_cached(slot)
            clock.on_access(slot)
        # All referenced: hand clears bits then evicts the first.
        assert clock.pick_victim() == 1

    def test_remove_midstream(self):
        clock = ClockPolicy()
        clock.on_cached(1)
        clock.on_cached(2)
        clock.remove(1)
        assert clock.pick_victim() == 2


class TestFactory:
    def test_known_names(self):
        assert make_policy("lrc").name == "lrc"
        assert make_policy("lru").name == "lru"
        assert make_policy("clock").name == "clock"

    def test_unknown_rejected(self):
        with pytest.raises(KernelError):
            make_policy("random")


class TestPolicyInvariants:
    @pytest.mark.parametrize("name", ["lrc", "lru", "clock"])
    @given(ops=st.lists(st.tuples(st.sampled_from(["cache", "access"]),
                                  st.integers(0, 19)), max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_victims_are_members_and_unique(self, name, ops):
        policy = make_policy(name)
        members: set[int] = set()
        for kind, slot in ops:
            if kind == "cache" and slot not in members:
                policy.on_cached(slot)
                members.add(slot)
            elif kind == "access" and slot in members:
                policy.on_access(slot)
        victims = []
        while members:
            victim = policy.pick_victim()
            assert victim in members
            members.remove(victim)
            victims.append(victim)
        assert len(set(victims)) == len(victims)
