"""Randomised protocol fuzzing: host traffic vs windowed device traffic.

Hypothesis generates arbitrary interleavings of host reads/writes and
device-side transfers; for every interleaving the shared bus must stay
collision-free and the final DRAM contents must match a flat reference
model.  This is the §VII-A aging argument turned into a property.
"""

from hypothesis import given, settings, strategies as st

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.sim import Engine
from repro.units import mb, us

SPEC = NVDIMMC_1600

# A step is (actor, slot, payload_tag):
#   actor 0 = host write, 1 = host read, 2 = device write, 3 = device read
step_strategy = st.tuples(st.integers(0, 3), st.integers(0, 15),
                          st.integers(0, 255))


def slot_addr(slot: int) -> int:
    return 0x10000 + slot * 4096


@given(steps=st.lists(step_strategy, min_size=1, max_size=40),
       host_gap_us=st.floats(min_value=0.3, max_value=3.0))
@settings(max_examples=25, deadline=None)
def test_random_interleavings_stay_clean(steps, host_gap_us):
    engine = Engine()
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device, raise_on_collision=True)
    imc = IntegratedMemoryController(engine, SPEC, bus)
    agent = NVMCProtocolAgent(SPEC, bus)
    imc.start_refresh_process()

    reference: dict[int, bytes] = {}
    # Slots the device has written: the CP protocol gives the NVMC
    # ownership of a slot until the driver observes the ack, so the
    # host never races a queued device write (the §IV-C serialisation).
    pending_device_writes: dict[int, bytes] = {}
    t = 0
    for actor, slot, tag in steps:
        if actor == 0 and slot in pending_device_writes:
            actor = 1   # ownership rule: host may read, not write
        addr = slot_addr(slot)
        if actor == 0:
            payload = bytes([tag]) * 64
            t = imc.host_write(addr, payload, t + us(host_gap_us))
            reference[slot] = payload
        elif actor == 1:
            data, t = imc.host_read(addr, 64, t + us(host_gap_us))
            # Host reads see the reference value unless a device write
            # to this slot is still queued (it lands later in time).
            if slot in reference and slot not in pending_device_writes:
                assert data == reference[slot]
        elif actor == 2:
            payload = bytes([tag ^ 0xFF]) * 4096
            agent.queue_write(addr, payload)
            pending_device_writes[slot] = payload[:64]
            reference[slot] = payload[:64]
        else:
            agent.queue_read(addr, 4096)

    # Drain every queued device transfer (one page per window).
    engine.run(until=t + us(10 * (len(steps) + 2)))
    assert agent.backlog == 0
    assert bus.collision_count == 0

    for slot, expected in reference.items():
        assert device.peek(slot_addr(slot), 64) == expected

    # Detector never misfired across the whole run.
    assert agent.detector.false_positives == 0
    assert agent.detector.false_negatives == 0


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_sustained_duel_over_many_windows(seed):
    """Long mixed run: every window carries device work while the host
    hammers reads — zero collisions, every byte accounted for."""
    import random
    rng = random.Random(seed)
    engine = Engine()
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device, raise_on_collision=True)
    imc = IntegratedMemoryController(engine, SPEC, bus)
    agent = NVMCProtocolAgent(SPEC, bus)
    imc.start_refresh_process()

    expected = {}
    for i in range(25):
        tag = rng.randrange(256)
        agent.queue_write(i * 4096, bytes([tag]) * 4096)
        expected[i] = tag
    t = 0
    for i in range(120):
        addr = rng.randrange(0, 512) * 64 + mb(1)
        _, t = imc.host_read(addr, 64, t + us(rng.uniform(0.5, 2.0)))
    engine.run(until=t + us(300))

    assert bus.collision_count == 0
    assert agent.backlog == 0
    for i, tag in expected.items():
        assert device.peek(i * 4096, 1) == bytes([tag])
