"""Why the mechanism needs *all-bank* refresh (§III-B, last paragraph).

"The standard DDR4 specification does not support per-bank refresh ...
DDR4 memory controllers are designed to precharge all opened banks
(PREA) before issuing a REFRESH command.  This requirement ensures that
all banks of the DRAM cache are deactivated/closed before the extra
tRFC time, and enables the NVMC to access all the banks."

These tests demonstrate both directions: with the DDR4 discipline the
device may touch any bank in the window; in a hypothetical per-bank
refresh world (LPDDR4/DDR5-style), host rows stay open across the
"window" and the device's access pattern becomes illegal.
"""

import pytest

from repro.ddr.bank import BankState
from repro.ddr.bus import SharedBus
from repro.ddr.commands import Command, CommandKind
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import NVDIMMC_1600
from repro.errors import ProtocolError
from repro.units import mb

SPEC = NVDIMMC_1600


def make():
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device)
    return device, bus


class TestAllBankDiscipline:
    def test_prea_plus_ref_closes_everything(self):
        """After PREA+REF every bank is refreshing, then idle — the
        whole cache is accessible to the NVMC."""
        device, bus = make()
        t = 0
        bus.issue("imc", Command(CommandKind.ACT, bank=0, row=5), t)
        bus.issue("imc", Command(CommandKind.ACT, bank=7, row=9),
                  t + SPEC.trrd_ps)
        t += SPEC.tras_ps + SPEC.trrd_ps
        bus.issue("imc", Command(CommandKind.PREA), t)
        bus.issue("imc", Command(CommandKind.REF), t + SPEC.trp_ps)
        device.maybe_complete_refresh(t + SPEC.trp_ps
                                      + SPEC.trfc_device_ps)
        assert all(b.state is BankState.IDLE for b in device.banks)

    def test_device_may_use_any_bank_in_the_window(self):
        device, bus = make()
        t = 0
        bus.issue("imc", Command(CommandKind.PREA), t)
        ref = t + SPEC.trp_ps
        bus.issue("imc", Command(CommandKind.REF), ref)
        window_start = ref + SPEC.trfc_device_ps
        # The NVMC activates banks 0, 5 and 15 — any bank is fair game.
        for i, bank in enumerate((0, 5, 15)):
            bus.issue("nvmc", Command(CommandKind.ACT, bank=bank, row=1),
                      window_start + i * SPEC.trrd_ps)
        assert device.banks[15].state is BankState.ACTIVE


class TestPerBankRefreshWorld:
    def test_open_host_row_breaks_the_window_contract(self):
        """Hypothetical per-bank refresh: the host refreshes bank 0
        only, leaving its row in bank 3 open.  A device that assumes
        the DDR4 all-bank contract and ACTs bank 3 commits a protocol
        violation — the §III-B argument for why DDR4's limitation is
        actually what makes the mechanism safe."""
        device, bus = make()
        t = 0
        # Host opens a row in bank 3 and keeps it open.
        bus.issue("imc", Command(CommandKind.ACT, bank=3, row=42), t)
        # Hypothetical per-bank refresh of bank 0 (modelled directly on
        # the bank, as DDR4 has no such command to issue).
        t += SPEC.tras_ps
        device.banks[0].begin_refresh(t)
        device.banks[0].end_refresh(t + SPEC.trfc_device_ps)
        # The device, believing a refresh implies "all banks closed",
        # activates bank 3 -> illegal ACT on an active bank.
        with pytest.raises(ProtocolError, match="ACT while row"):
            bus.issue("nvmc", Command(CommandKind.ACT, bank=3, row=7),
                      t + SPEC.trfc_device_ps + SPEC.clock_ps)

    def test_device_read_of_host_row_is_data_corruption_risk(self):
        """Worse: the device could *read the host's open row* believing
        it owns the bank — Fig. 2a C2 in the per-bank world."""
        device, bus = make()
        bus.issue("imc", Command(CommandKind.ACT, bank=3, row=42), 0)
        # Device reads bank 3 assuming its own row is open: the model
        # catches the wrong-row access that silicon would not.
        with pytest.raises(ProtocolError, match="row"):
            bus.issue("nvmc", Command(CommandKind.RD, bank=3, row=7,
                                      column=0), SPEC.trcd_ps)
