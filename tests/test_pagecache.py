"""Tests for the page-cache model and the DAX-motivation comparison."""

import pytest

from repro.device.nvdimmc import PmemSystem
from repro.errors import KernelError
from repro.kernel.pagecache import PageCache
from repro.units import PAGE_4K, mb


def make_cache(capacity_pages=64):
    system = PmemSystem(device_bytes=mb(16))
    return system, PageCache(system.driver, capacity_pages=capacity_pages)


class TestPageCache:
    def test_read_after_device_write(self):
        system, cache = make_cache()
        system.driver.write_page(3, b"\x7c" * PAGE_4K, 0)
        data, _ = cache.read(3 * PAGE_4K + 100, 16, 0)
        assert data == b"\x7c" * 16

    def test_write_read_round_trip(self):
        _system, cache = make_cache()
        t = cache.write(1000, b"page-cache!", 0)
        data, _ = cache.read(1000, 11, t)
        assert data == b"page-cache!"

    def test_first_touch_is_a_miss_then_hits(self):
        _system, cache = make_cache()
        cache.read(0, 8, 0)
        cache.read(64, 8, 0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_miss_copies_a_whole_block(self):
        """§II-A: a 64 B read moves 4 KB through the block layer."""
        _system, cache = make_cache()
        cache.read(0, 64, 0)
        assert cache.stats.bytes_copied == PAGE_4K

    def test_miss_costs_block_layer_time(self):
        _system, cache = make_cache()
        _, t_miss = cache.read(0, 8, 0)
        start = t_miss
        _, t_hit = cache.read(8, 8, start)
        assert t_miss >= PageCache.BLOCK_LAYER_PS
        assert t_hit == start            # hits are free at this level

    def test_lru_eviction_writes_back_dirty(self):
        system, cache = make_cache(capacity_pages=2)
        t = cache.write(0, b"dirty0", 0)
        t = cache.write(PAGE_4K, b"dirty1", t)
        t = cache.write(2 * PAGE_4K, b"dirty2", t)   # evicts page 0
        assert cache.cached_pages == 2
        assert cache.stats.writebacks == 1
        data, _ = system.driver.read_page(0, t)
        assert data[:6] == b"dirty0"

    def test_sync_flushes_all_dirty(self):
        system, cache = make_cache()
        t = 0
        for page in range(4):
            t = cache.write(page * PAGE_4K, bytes([page]) * 32, t)
        t = cache.sync(t)
        for page in range(4):
            data, _ = system.driver.read_page(page, t)
            assert data[:32] == bytes([page]) * 32

    def test_capacity_validation(self):
        system = PmemSystem(device_bytes=mb(16))
        with pytest.raises(KernelError):
            PageCache(system.driver, capacity_pages=0)

    def test_spanning_access(self):
        _system, cache = make_cache()
        payload = bytes(range(256)) * 32   # 8 KB, crosses a boundary
        t = cache.write(PAGE_4K - 100, payload, 0)
        data, _ = cache.read(PAGE_4K - 100, len(payload), t)
        assert data == payload


class TestDaxMotivation:
    def test_dax_wins(self):
        from repro.experiments import dax_motivation
        record = dax_motivation.run(nops=600)
        measured = {c.label: c.measured for c in record.comparisons}
        assert measured["DAX advantage"] > 1.5
        assert measured["page-cache bytes copied per byte read"] > 10
