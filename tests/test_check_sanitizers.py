"""Injection tests for the repro.check sanitizers.

Each sanitizer gets violations injected — synthetically (records fed
straight through a tracer) and, for the coherence rules, end-to-end
through the real models — and must raise/collect a structured
:class:`SanitizerViolation`.  The suite-level tests cover certification
(refusing drop-compromised traces) and a sanitizer-clean Fig. 8 run.
"""

import pytest

from repro.check import (BusRaceSanitizer, CoherenceSanitizer,
                         ProtocolSanitizer, SanitizerSuite,
                         SanitizerViolation, TimeSanitizer, default_suite)
from repro.sim.trace import Tracer, use_tracer


def strict(*sanitizers):
    """An enabled tracer with a strict (raise-at-once) suite attached."""
    tracer = Tracer(enabled=True)
    suite = SanitizerSuite(sanitizers, strict=True).attach(tracer)
    return tracer, suite


class TestBusRaceSanitizer:
    def test_ca_overlap_between_masters_raises(self):
        tracer, _ = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "ACT", owner="bus#0", master="imc",
                    kind="ACT", bank=0, ca_end=1250)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(600, "ddr.cmd", "ACT", owner="bus#0", master="nvmc",
                        kind="ACT", bank=1, ca_end=1850)
        assert exc.value.rule == "bus-collision"
        assert exc.value.sanitizer == "BusRace"
        assert exc.value.record is not None
        assert exc.value.context   # offending trace window attached

    def test_same_master_back_to_back_is_fine(self):
        tracer, suite = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "ACT", owner="bus#0", master="imc",
                    kind="ACT", bank=0, ca_end=1250)
        tracer.emit(1250, "ddr.cmd", "RD", owner="bus#0", master="imc",
                    kind="RD", bank=0, ca_end=2500,
                    dq_start=13750, dq_end=18750)
        assert not suite.violations

    def test_device_outside_window_raises(self):
        tracer, _ = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "REF", owner="bus#0", master="imc",
                    kind="REF", bank=-1, ca_end=1250,
                    win_start=350_000, win_end=1_250_000)
        # Inside the window: fine.
        tracer.emit(350_000, "ddr.cmd", "RD", owner="bus#0", master="nvmc",
                    kind="RD", bank=0, ca_end=351_250,
                    dq_start=363_750, dq_end=368_750)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(2_000_000, "ddr.cmd", "ACT", owner="bus#0",
                        master="nvmc", kind="ACT", bank=0,
                        ca_end=2_001_250)
        assert exc.value.rule == "window-escape"

    def test_bus_reported_collision_passthrough(self):
        tracer, _ = strict(BusRaceSanitizer())
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(5, "ddr.collision", "CA collision", owner="bus#0",
                        first="imc", second="nvmc")
        assert exc.value.rule == "bus-collision"


class TestCoherenceSanitizer:
    @staticmethod
    def attach(tracer, owner="nvmc#0", coherent=True):
        tracer.emit(0, "nvdc.attach", "nvdc0", owner=owner,
                    coherent=coherent, skip_coherence=False)

    def test_dirty_evict_without_flush_raises(self):
        tracer, _ = strict(CoherenceSanitizer())
        self.attach(tracer)
        tracer.emit(10, "nvdc.dirty", "page 3", owner="nvmc#0",
                    page=3, slot=1, addr=4096)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(20, "nvmc.dma", "evict", owner="nvmc#0", cmd=1,
                        kind="evict", window=0, bytes=4096, budget=4096,
                        addr=4096, win_start=0, win_end=900_000, end_ps=20)
        assert exc.value.rule == "dirty-evict"

    def test_flushed_evict_is_fine(self):
        tracer, suite = strict(CoherenceSanitizer())
        self.attach(tracer)
        tracer.emit(10, "nvdc.dirty", "page 3", owner="nvmc#0",
                    page=3, slot=1, addr=4096)
        tracer.emit(15, "nvdc.flush", "slot 1", owner="nvmc#0",
                    addr=4096, bytes=4096, slot=1)
        tracer.emit(16, "nvdc.sfence", "sfence", owner="nvmc#0",
                    addr=4096, bytes=4096, slot=1)
        tracer.emit(17, "cp.post", "WRITEBACK", owner="nvmc#0", cmd=1,
                    slot=0, opcode="WRITEBACK", phase="ODD", depth=1)
        tracer.emit(20, "nvmc.dma", "evict", owner="nvmc#0", cmd=1,
                    kind="evict", window=0, bytes=4096, budget=4096,
                    addr=4096, win_start=0, win_end=900_000, end_ps=20)
        assert not suite.violations

    def test_unfenced_doorbell_raises(self):
        tracer, _ = strict(CoherenceSanitizer())
        self.attach(tracer)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(10, "cp.post", "WRITEBACK", owner="nvmc#0", cmd=1,
                        slot=0, opcode="WRITEBACK", phase="ODD", depth=1)
        assert exc.value.rule == "unfenced-doorbell"

    def test_stale_fill_without_invalidate_raises(self):
        tracer, _ = strict(CoherenceSanitizer())
        self.attach(tracer)
        tracer.emit(10, "nvmc.dma", "fill", owner="nvmc#0", cmd=1,
                    kind="fill", window=0, bytes=4096, budget=4096,
                    addr=8192, win_start=0, win_end=900_000, end_ps=10)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(20, "cp.post", "NOP", owner="nvmc#0", cmd=2,
                        slot=0, opcode="NOP", phase="EVEN", depth=1)
        assert exc.value.rule == "stale-fill"

    def test_stale_fill_caught_at_finalize(self):
        tracer = Tracer(enabled=True)
        suite = SanitizerSuite([CoherenceSanitizer()]).attach(tracer)
        self.attach(tracer)
        tracer.emit(10, "nvmc.dma", "fill", owner="nvmc#0", cmd=1,
                    kind="fill", window=0, bytes=4096, budget=4096,
                    addr=8192, win_start=0, win_end=900_000, end_ps=10)
        suite.detach()
        assert [v.rule for v in suite.violations] == ["stale-fill"]

    def test_inactive_without_coherent_attach(self):
        tracer, suite = strict(CoherenceSanitizer())
        self.attach(tracer, coherent=False)
        tracer.emit(10, "nvdc.dirty", "page 3", owner="nvmc#0",
                    page=3, slot=1, addr=4096)
        tracer.emit(20, "nvmc.dma", "evict", owner="nvmc#0", cmd=1,
                    kind="evict", window=0, bytes=4096, budget=4096,
                    addr=4096, win_start=0, win_end=900_000, end_ps=20)
        assert not suite.violations


class TestProtocolSanitizer:
    def test_queue_depth_overflow_raises(self):
        tracer, _ = strict(ProtocolSanitizer())
        tracer.emit(0, "cp.post", "NOP", owner="nvmc#0", cmd=1, slot=0,
                    opcode="NOP", phase="ODD", depth=1)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(5, "cp.post", "NOP", owner="nvmc#0", cmd=2, slot=1,
                        opcode="NOP", phase="EVEN", depth=1)
        assert exc.value.rule == "queue-depth"

    def test_posted_then_acked_is_fine(self):
        tracer, suite = strict(ProtocolSanitizer())
        for cmd in (1, 2):
            tracer.emit(cmd * 10, "cp.post", "NOP", owner="nvmc#0",
                        cmd=cmd, slot=0, opcode="NOP", phase="ODD", depth=1)
            tracer.emit(cmd * 10 + 5, "cp.ack", "NOP", owner="nvmc#0",
                        cmd=cmd, slot=0, opcode="NOP", phase="ODD")
        assert not suite.violations

    def test_window_budget_overflow_raises(self):
        tracer, _ = strict(ProtocolSanitizer())
        tracer.emit(0, "nvmc.dma", "fill", owner="nvmc#0", cmd=1,
                    kind="fill", window=7, bytes=4096, budget=4096,
                    addr=0, win_start=0, win_end=900_000, end_ps=5)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(10, "nvmc.dma", "evict", owner="nvmc#0", cmd=1,
                        kind="evict", window=7, bytes=4096, budget=4096,
                        addr=4096, win_start=0, win_end=900_000, end_ps=15)
        assert exc.value.rule == "window-budget"

    def test_window_shared_by_two_commands_raises(self):
        tracer, _ = strict(ProtocolSanitizer())
        tracer.emit(0, "nvmc.dma", "poll", owner="nvmc#0", cmd=1,
                    kind="poll", window=7, bytes=64, budget=4096,
                    addr=-1, win_start=0, win_end=900_000, end_ps=5)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(10, "nvmc.dma", "poll", owner="nvmc#0", cmd=2,
                        kind="poll", window=7, bytes=64, budget=4096,
                        addr=-1, win_start=0, win_end=900_000, end_ps=15)
        assert exc.value.rule == "window-sharing"

    def test_refresh_with_open_bank_raises(self):
        tracer, _ = strict(ProtocolSanitizer())
        tracer.emit(0, "ddr.cmd", "ACT", owner="bus#0", master="imc",
                    kind="ACT", bank=2, ca_end=1250)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(5000, "ddr.cmd", "REF", owner="bus#0", master="imc",
                        kind="REF", bank=-1, ca_end=6250,
                        win_start=355_000, win_end=1_255_000)
        assert exc.value.rule == "ref-open-banks"

    def test_prea_before_refresh_is_fine(self):
        tracer, suite = strict(ProtocolSanitizer())
        tracer.emit(0, "ddr.cmd", "ACT", owner="bus#0", master="imc",
                    kind="ACT", bank=2, ca_end=1250)
        tracer.emit(2500, "ddr.cmd", "PREA", owner="bus#0", master="imc",
                    kind="PREA", bank=-1, ca_end=3750)
        tracer.emit(5000, "ddr.cmd", "REF", owner="bus#0", master="imc",
                    kind="REF", bank=-1, ca_end=6250,
                    win_start=355_000, win_end=1_255_000)
        assert not suite.violations


class TestTimeSanitizer:
    def test_float_time_raises(self):
        tracer, _ = strict(TimeSanitizer())
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(1.5, "nvdc.op", "op", owner="nvmc#0")
        assert exc.value.rule == "non-integer-time"

    def test_negative_time_raises(self):
        tracer, _ = strict(TimeSanitizer())
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(-5, "nvdc.op", "op", owner="nvmc#0")
        assert exc.value.rule == "negative-time"

    def test_time_regression_raises(self):
        tracer, _ = strict(TimeSanitizer())
        tracer.emit(100, "nvmc.dma", "fill", owner="nvmc#0")
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(50, "nvmc.dma", "ack", owner="nvmc#0")
        assert exc.value.rule == "time-regression"

    def test_independent_owners_do_not_interfere(self):
        tracer, suite = strict(TimeSanitizer())
        tracer.emit(100, "nvmc.dma", "fill", owner="nvmc#0")
        tracer.emit(50, "nvmc.dma", "fill", owner="nvmc#1")
        assert not suite.violations


@pytest.mark.sanitizer_exempt
class TestEndToEnd:
    """Violations driven through the real models, and clean runs."""

    def test_skip_coherence_driver_is_caught(self):
        from repro.device.nvdimmc import NVDIMMCSystem
        from repro.nvmc.fsm import FirmwareModel
        from repro.units import mb
        tracer = Tracer(enabled=True)
        suite = default_suite(strict=True)
        with use_tracer(tracer), suite.attach(tracer):
            system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                                   firmware=FirmwareModel(step_ps=0),
                                   with_cpu_cache=True)
            system.driver.skip_coherence = True   # the §V-B bug
            system.driver.fault(0, 0, for_write=True)
            with pytest.raises(SanitizerViolation) as exc:
                system.driver.fault(1, 0, for_write=True)
            assert exc.value.sanitizer == "Coherence"

    def test_coherent_driver_certifies_clean(self):
        from repro.device.nvdimmc import NVDIMMCSystem
        from repro.nvmc.fsm import FirmwareModel
        from repro.units import mb
        tracer = Tracer(enabled=True)
        suite = default_suite()
        with use_tracer(tracer), suite.attach(tracer):
            system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                                   firmware=FirmwareModel(step_ps=0),
                                   with_cpu_cache=True)
            for page in (0, 1, 2):
                system.driver.fault(page, 0, for_write=True)
        suite.certify(tracer)

    def test_certify_refuses_dropped_records(self):
        tracer = Tracer(enabled=True, capacity=1)
        suite = default_suite()
        suite.attach(tracer)
        with pytest.warns(RuntimeWarning):
            tracer.emit(0, "nvdc.op", "a", owner="x#0")
            tracer.emit(1, "nvdc.op", "b", owner="x#0")
        suite.detach()
        with pytest.raises(SanitizerViolation) as exc:
            suite.certify(tracer)
        assert exc.value.rule == "dropped-records"

    def test_fig8_run_is_sanitizer_clean(self):
        """Acceptance: the Fig. 8 randrw experiment (baseline + cached +
        uncached systems) completes with zero violations and certifies."""
        from repro.experiments.runner import ALL_EXPERIMENTS
        tracer = Tracer(enabled=True)
        suite = default_suite()
        with use_tracer(tracer), suite.attach(tracer):
            ALL_EXPERIMENTS["fig8"]()
        assert len(tracer) > 0
        assert not suite.violations, suite.report()
        suite.certify(tracer)


class TestDrainExemption:
    """§V-C: ``power.drain`` markers suspend window-escape checking."""

    REF = dict(kind="REF", bank=-1, ca_end=1250,
               win_start=350_000, win_end=1_250_000)

    def test_declared_drain_may_ignore_trfc(self):
        tracer, suite = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "REF", owner="bus#0", master="imc",
                    **self.REF)
        tracer.emit(2_000_000, "power.drain", "begins", owner="bus#0",
                    active=True, mapped=1)
        # Far outside the window: legal only because a drain is declared.
        tracer.emit(2_000_100, "ddr.cmd", "drain", owner="bus#0",
                    master="nvmc-drain", kind="RD", ca_end=2_001_350,
                    dq_start=2_000_100, dq_end=2_001_350)
        tracer.emit(2_001_400, "power.drain", "ends", owner="bus#0",
                    active=False, drained=1, pending=0)
        assert not suite.violations

    def test_escape_after_drain_ends_still_flags(self):
        tracer, _ = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "REF", owner="bus#0", master="imc",
                    **self.REF)
        tracer.emit(2_000_000, "power.drain", "begins", owner="bus#0",
                    active=True, mapped=1)
        tracer.emit(2_000_500, "power.drain", "ends", owner="bus#0",
                    active=False, drained=0, pending=0)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(3_000_000, "ddr.cmd", "RD", owner="bus#0",
                        master="nvmc-drain", kind="RD", ca_end=3_001_250)
        assert exc.value.rule == "window-escape"

    def test_undeclared_drain_still_flags(self):
        """The same transfer with no marker is a protocol violation."""
        tracer, _ = strict(BusRaceSanitizer())
        tracer.emit(0, "ddr.cmd", "REF", owner="bus#0", master="imc",
                    **self.REF)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(2_000_000, "ddr.cmd", "drain", owner="bus#0",
                        master="nvmc-drain", kind="RD", ca_end=2_001_250)
        assert exc.value.rule == "window-escape"

    def test_collision_detection_stays_on_during_drain(self):
        """Even the battery drain must not overlap another master."""
        tracer, _ = strict(BusRaceSanitizer())
        tracer.emit(0, "power.drain", "begins", owner="bus#0",
                    active=True, mapped=1)
        tracer.emit(100, "ddr.cmd", "ACT", owner="bus#0", master="imc",
                    kind="ACT", bank=0, ca_end=1350)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(600, "ddr.cmd", "drain", owner="bus#0",
                        master="nvmc-drain", kind="RD", ca_end=1850)
        assert exc.value.rule == "bus-collision"

    def test_drain_exemption_is_per_owner(self):
        tracer, _ = strict(BusRaceSanitizer())
        for owner in ("bus#0", "bus#1"):
            tracer.emit(0, "ddr.cmd", "REF", owner=owner, master="imc",
                        **self.REF)
        tracer.emit(2_000_000, "power.drain", "begins", owner="bus#0",
                    active=True, mapped=1)
        with pytest.raises(SanitizerViolation) as exc:
            tracer.emit(2_000_100, "ddr.cmd", "drain", owner="bus#1",
                        master="nvmc-drain", kind="RD", ca_end=2_001_350)
        assert exc.value.rule == "window-escape"
