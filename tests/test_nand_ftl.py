"""Tests for the flash translation layer: mapping, GC, wear levelling."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FTLError
from repro.nand.device import NANDDie
from repro.nand.ftl import FlashTranslationLayer
from repro.nand.spec import ZNANDSpec
from repro.units import kb


def tiny_spec(pages_per_block=16, blocks=24):
    """A deliberately small geometry so GC triggers quickly."""
    return ZNANDSpec(
        name="test", capacity_bytes=blocks * pages_per_block * kb(4),
        page_bytes=kb(4), pages_per_block=pages_per_block,
        planes_per_die=1, dies=1, initial_bad_block_ppm=0)


def make_ftl(logical_blocks=8, pages_per_block=16, blocks=24, dies=1):
    spec = tiny_spec(pages_per_block, blocks)
    nand = [NANDDie(spec, die_index=i) for i in range(dies)]
    logical = logical_blocks * pages_per_block * kb(4)
    return FlashTranslationLayer(nand, logical)


def page_of(tag: int) -> bytes:
    return bytes([tag % 256]) * kb(4)


class TestBasicMapping:
    def test_unwritten_page_reads_none(self):
        ftl = make_ftl()
        data, ppa, ops = ftl.read_page(0)
        assert data is None and ppa is None and ops == []

    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write_page(3, page_of(7))
        data, ppa, ops = ftl.read_page(3)
        assert data == page_of(7)
        assert ppa is not None
        assert [op.kind for op in ops] == ["read"]

    def test_overwrite_moves_page(self):
        ftl = make_ftl()
        ppa1, _ = ftl.write_page(0, page_of(1))
        ppa2, _ = ftl.write_page(0, page_of(2))
        assert ppa1 != ppa2
        data, _, _ = ftl.read_page(0)
        assert data == page_of(2)

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.trim(0)
        data, _, _ = ftl.read_page(0)
        assert data is None

    def test_lpn_out_of_range(self):
        ftl = make_ftl(logical_blocks=1)
        with pytest.raises(FTLError):
            ftl.read_page(10**9)
        with pytest.raises(FTLError):
            ftl.write_page(-1, page_of(0))

    def test_insufficient_capacity_rejected(self):
        spec = tiny_spec(blocks=4)
        nand = [NANDDie(spec)]
        with pytest.raises(FTLError):
            FlashTranslationLayer(nand, spec.capacity_bytes * 2)


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(ftl.logical_pages * 4):
            ftl.write_page(i % ftl.logical_pages, page_of(i))
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.erases > 0
        assert ftl.free_blocks > 0

    def test_data_survives_gc(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        # Fill the logical space, then hammer a hot subset to force GC.
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        for i in range(ftl.logical_pages * 3):
            ftl.write_page(i % 16, page_of(1000 + i))
        # Cold pages must still read their original data.
        for lpn in range(16, ftl.logical_pages):
            data, _, _ = ftl.read_page(lpn)
            assert data == page_of(lpn), lpn

    def test_write_amplification_above_one_under_pressure(self):
        """Random overwrites on tight over-provisioning leave victims
        partially valid, so GC must relocate (WA > 1)."""
        import random
        rng = random.Random(0)
        ftl = make_ftl(logical_blocks=10, blocks=20)
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        for i in range(ftl.logical_pages * 5):
            ftl.write_page(rng.randrange(ftl.logical_pages), page_of(i))
        assert ftl.stats.write_amplification > 1.0
        assert ftl.stats.gc_reads == ftl.stats.gc_programs

    def test_write_amplification_one_without_gc(self):
        ftl = make_ftl(logical_blocks=2, blocks=24)
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        assert ftl.stats.write_amplification == 1.0


class TestWearLevelling:
    def test_erase_counts_stay_balanced(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(ftl.logical_pages * 8):
            ftl.write_page(i % ftl.logical_pages, page_of(i))
        counts = [ftl.dies[0].block_info(p, b).erase_count
                  for (p, b) in ftl.dies[0].good_blocks()]
        assert max(counts) - min(counts) <= max(3, max(counts) // 2 + 1)


class TestMultiDie:
    def test_writes_stripe_across_dies(self):
        ftl = make_ftl(logical_blocks=8, blocks=24, dies=4)
        dies_used = set()
        for lpn in range(16):
            ppa, _ = ftl.write_page(lpn, page_of(lpn))
            dies_used.add(ppa.die)
        assert dies_used == {0, 1, 2, 3}


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 255)),
                    min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_ftl_matches_reference_dict(self, writes):
        """The FTL must behave exactly like a dict under random writes."""
        ftl = make_ftl(logical_blocks=2, blocks=24)   # 32 logical pages
        reference = {}
        for lpn, tag in writes:
            ftl.write_page(lpn, page_of(tag))
            reference[lpn] = page_of(tag)
        for lpn, expected in reference.items():
            data, _, _ = ftl.read_page(lpn)
            assert data == expected


class TestVictimStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(FTLError):
            make_ftl().set_victim_strategy("fifo")

    def test_bad_static_period_rejected(self):
        with pytest.raises(FTLError):
            make_ftl().set_victim_strategy("static", static_period=0)

    def test_static_period_rearms_the_migration_timer(self):
        ftl = make_ftl()
        ftl.set_victim_strategy("static", static_period=3)
        assert ftl.static_level_period == 3
        assert ftl._static_level_due == ftl.stats.erases + 3

    def test_greedy_tie_breaks_on_block_key(self):
        """Equal-valid victims must resolve by (die, plane, block), not
        by dict iteration quirks (regression: PYTHONHASHSEED-dependent
        victim choice)."""
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(32):
            ftl.write_page(i, page_of(i))        # blocks 0 and 1 full
        for i in range(8):
            ftl.write_page(i, page_of(100 + i))  # block 0: valid = 8
        for i in range(16, 24):
            ftl.write_page(i, page_of(200 + i))  # block 1: valid = 8
        victim = ftl._pick_victim()
        assert (victim.die, victim.plane, victim.block) == (0, 0, 0)

    def test_cost_benefit_age_outweighs_a_small_valid_gap(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(32):
            ftl.write_page(i, page_of(i))        # blocks 0 and 1 full
        for i in range(8):
            ftl.write_page(i, page_of(100 + i))  # block 0: valid = 8
        for i in range(16, 23):
            ftl.write_page(i, page_of(200 + i))  # block 1: valid = 9
        ftl.set_victim_strategy("greedy")
        greedy = ftl._pick_victim()
        assert (greedy.die, greedy.plane, greedy.block) == (0, 0, 0)
        # Make block 1's data ancient: its slightly-worse valid count
        # should now lose to its far larger age * freed benefit.
        ftl._blocks[(0, 0, 1)].last_seq = 0
        ftl.set_victim_strategy("cost_benefit")
        aged = ftl._pick_victim()
        assert (aged.die, aged.plane, aged.block) == (0, 0, 1)

    def test_static_leveling_migrates_the_cold_block(self):
        """A fully-valid cold block is never a greedy victim; the static
        strategy must still recycle it into the free pool."""

        def churn(ftl):
            for i in range(16):
                ftl.write_page(i, page_of(i))    # block 0: cold, valid=16
            for i in range(ftl.logical_pages * 6):
                lpn = 16 + (i % (ftl.logical_pages - 16))
                ftl.write_page(lpn, page_of(i))
            return ftl.dies[0].block_info(0, 0).erase_count

        greedy_ftl = make_ftl(logical_blocks=8, blocks=16)
        static_ftl = make_ftl(logical_blocks=8, blocks=16)
        static_ftl.set_victim_strategy("static", static_period=4)
        assert churn(greedy_ftl) == 0            # parked forever
        assert churn(static_ftl) >= 1            # migrated and recycled
        for i in range(16):                      # cold data survived
            data, _, _ = static_ftl.read_page(i)
            assert data == page_of(i)


class TestWearOutHousekeeping:
    def test_retire_worn_free_blocks(self):
        ftl = make_ftl()
        key = sorted(ftl._free)[0]
        die = ftl.dies[key[0]]
        die.block_info(key[1], key[2]).erase_count = \
            ftl.spec.endurance_pe_cycles
        assert ftl.retire_worn_free_blocks() == 1
        assert key not in ftl._free
        assert die.block_info(key[1], key[2]).bad
        assert ftl.stats.grown_bad_blocks == 1
        assert ftl.retire_worn_free_blocks() == 0    # idempotent

    def test_retire_leaves_healthy_blocks_alone(self):
        ftl = make_ftl()
        free_before = len(ftl._free)
        assert ftl.retire_worn_free_blocks() == 0
        assert len(ftl._free) == free_before


class TestRelocate:
    def test_relocate_unmapped_lpn_is_a_no_op(self):
        ftl = make_ftl()
        assert ftl.relocate(3) == []

    def test_relocate_survives_gc_moving_the_target(self):
        """Regression: relocate() captured the physical address before
        running GC; when GC picked the very block holding the target
        LPN, the stale address pointed at erased flash and the scrub
        re-appended the erased pattern as the page's content — a
        silent, self-consistent corruption."""
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(16):
            ftl.write_page(i, page_of(i))        # block 0 full
        for i in range(1, 16):
            ftl.write_page(i, page_of(50 + i))   # block 0: only lpn 0
        ftl.GC_LOW_WATER = len(ftl._free)        # next relocate runs GC
        ftl.GC_HIGH_WATER = len(ftl._free) + 1
        ftl.relocate(0)
        data, _, _ = ftl.read_page(0)
        assert data == page_of(0)
