"""Tests for the flash translation layer: mapping, GC, wear levelling."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FTLError
from repro.nand.device import NANDDie
from repro.nand.ftl import FlashTranslationLayer
from repro.nand.spec import ZNANDSpec
from repro.units import kb


def tiny_spec(pages_per_block=16, blocks=24):
    """A deliberately small geometry so GC triggers quickly."""
    return ZNANDSpec(
        name="test", capacity_bytes=blocks * pages_per_block * kb(4),
        page_bytes=kb(4), pages_per_block=pages_per_block,
        planes_per_die=1, dies=1, initial_bad_block_ppm=0)


def make_ftl(logical_blocks=8, pages_per_block=16, blocks=24, dies=1):
    spec = tiny_spec(pages_per_block, blocks)
    nand = [NANDDie(spec, die_index=i) for i in range(dies)]
    logical = logical_blocks * pages_per_block * kb(4)
    return FlashTranslationLayer(nand, logical)


def page_of(tag: int) -> bytes:
    return bytes([tag % 256]) * kb(4)


class TestBasicMapping:
    def test_unwritten_page_reads_none(self):
        ftl = make_ftl()
        data, ppa, ops = ftl.read_page(0)
        assert data is None and ppa is None and ops == []

    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write_page(3, page_of(7))
        data, ppa, ops = ftl.read_page(3)
        assert data == page_of(7)
        assert ppa is not None
        assert [op.kind for op in ops] == ["read"]

    def test_overwrite_moves_page(self):
        ftl = make_ftl()
        ppa1, _ = ftl.write_page(0, page_of(1))
        ppa2, _ = ftl.write_page(0, page_of(2))
        assert ppa1 != ppa2
        data, _, _ = ftl.read_page(0)
        assert data == page_of(2)

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.trim(0)
        data, _, _ = ftl.read_page(0)
        assert data is None

    def test_lpn_out_of_range(self):
        ftl = make_ftl(logical_blocks=1)
        with pytest.raises(FTLError):
            ftl.read_page(10**9)
        with pytest.raises(FTLError):
            ftl.write_page(-1, page_of(0))

    def test_insufficient_capacity_rejected(self):
        spec = tiny_spec(blocks=4)
        nand = [NANDDie(spec)]
        with pytest.raises(FTLError):
            FlashTranslationLayer(nand, spec.capacity_bytes * 2)


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(ftl.logical_pages * 4):
            ftl.write_page(i % ftl.logical_pages, page_of(i))
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.erases > 0
        assert ftl.free_blocks > 0

    def test_data_survives_gc(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        # Fill the logical space, then hammer a hot subset to force GC.
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        for i in range(ftl.logical_pages * 3):
            ftl.write_page(i % 16, page_of(1000 + i))
        # Cold pages must still read their original data.
        for lpn in range(16, ftl.logical_pages):
            data, _, _ = ftl.read_page(lpn)
            assert data == page_of(lpn), lpn

    def test_write_amplification_above_one_under_pressure(self):
        """Random overwrites on tight over-provisioning leave victims
        partially valid, so GC must relocate (WA > 1)."""
        import random
        rng = random.Random(0)
        ftl = make_ftl(logical_blocks=10, blocks=20)
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        for i in range(ftl.logical_pages * 5):
            ftl.write_page(rng.randrange(ftl.logical_pages), page_of(i))
        assert ftl.stats.write_amplification > 1.0
        assert ftl.stats.gc_reads == ftl.stats.gc_programs

    def test_write_amplification_one_without_gc(self):
        ftl = make_ftl(logical_blocks=2, blocks=24)
        for lpn in range(ftl.logical_pages):
            ftl.write_page(lpn, page_of(lpn))
        assert ftl.stats.write_amplification == 1.0


class TestWearLevelling:
    def test_erase_counts_stay_balanced(self):
        ftl = make_ftl(logical_blocks=8, blocks=24)
        for i in range(ftl.logical_pages * 8):
            ftl.write_page(i % ftl.logical_pages, page_of(i))
        counts = [ftl.dies[0].block_info(p, b).erase_count
                  for (p, b) in ftl.dies[0].good_blocks()]
        assert max(counts) - min(counts) <= max(3, max(counts) // 2 + 1)


class TestMultiDie:
    def test_writes_stripe_across_dies(self):
        ftl = make_ftl(logical_blocks=8, blocks=24, dies=4)
        dies_used = set()
        for lpn in range(16):
            ppa, _ = ftl.write_page(lpn, page_of(lpn))
            dies_used.add(ppa.die)
        assert dies_used == {0, 1, 2, 3}


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 255)),
                    min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_ftl_matches_reference_dict(self, writes):
        """The FTL must behave exactly like a dict under random writes."""
        ftl = make_ftl(logical_blocks=2, blocks=24)   # 32 logical pages
        reference = {}
        for lpn, tag in writes:
            ftl.write_page(lpn, page_of(tag))
            reference[lpn] = page_of(tag)
        for lpn, expected in reference.items():
            data, _, _ = ftl.read_page(lpn)
            assert data == expected
