"""Acceptance tests for the long-run health soak harness."""

import json

import pytest

from repro.health.cli import main as soak_main
from repro.health.monitor import LADDER_EDGES
from repro.health.report import SCHEMA, render_report, validate_report
from repro.health.soak import run_soak


@pytest.fixture(scope="module")
def quick_result():
    """One quick soak shared by the module (a soak run is the slow part)."""
    return run_soak(seed=0, quick=True)


@pytest.mark.sanitizer_exempt
class TestQuickSoak:
    """The soak runs its own sanitizer suite; the ambient one would
    double-count the deliberately injected faults."""

    def test_soak_is_clean(self, quick_result):
        assert quick_result.ok
        assert quick_result.data_loss == 0
        assert quick_result.violations == 0

    def test_round_sequence_marches_the_ladder(self, quick_result):
        names = [rnd.name for rnd in quick_result.rounds]
        assert names == ["baseline", "cp-storm", "media-remap",
                         "wear-out", "fail-stop"]
        # Each round starts where the previous one ended.
        for earlier, later in zip(quick_result.rounds,
                                  quick_result.rounds[1:]):
            assert later.health_before == earlier.health_after
        assert quick_result.rounds[0].health_before == "ok"
        assert quick_result.rounds[-1].health_after == "fail_stop"

    def test_every_ladder_edge_is_exercised(self, quick_result):
        expected = {f"{a}->{b}" for a, b in LADDER_EDGES}
        assert set(quick_result.edges) == expected
        assert all(count >= 1 for count in quick_result.edges.values())

    def test_faults_were_actually_composed(self, quick_result):
        armed = {fault for rnd in quick_result.rounds for fault in rnd.faults}
        assert len(armed) >= 3  # the acceptance gate's composition floor
        storm = quick_result.rounds[1]
        assert storm.notes.get("cp_retries", 0) > 0

    def test_degradation_is_bounded_not_free(self, quick_result):
        assert quick_result.latency_ok
        assert quick_result.soak_p99_ps >= quick_result.clean_p99_ps > 0
        wear_out = quick_result.rounds[3]
        assert wear_out.refused_writes > 0  # read-only mode refused work
        assert wear_out.data_loss == 0      # ... without losing anything

    def test_scrub_ran_during_the_soak(self, quick_result):
        assert quick_result.scrub["windows_used"] > 0


@pytest.mark.sanitizer_exempt
class TestDeterminism:
    def test_same_seed_renders_byte_identical_reports(self, quick_result):
        twin = run_soak(seed=0, quick=True)
        assert render_report(twin, timestamp="T") == \
            render_report(quick_result, timestamp="T")

    def test_different_seed_diverges(self, quick_result):
        other = run_soak(seed=1, quick=True)
        assert other.ok  # the gate holds for any seed ...
        assert render_report(other, timestamp="T") != \
            render_report(quick_result, timestamp="T")  # ... bytes differ


class TestReportSchema:
    def test_report_validates(self, quick_result):
        payload = json.loads(render_report(quick_result, timestamp="T"))
        assert payload["schema"] == SCHEMA
        assert validate_report(payload) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda p: p.pop("rounds"), "rounds"),
        (lambda p: p.update(schema="repro.soak/0"), "schema"),
        (lambda p: p["totals"].update(data_loss=-1), "data_loss"),
        (lambda p: p["rounds"][0].pop("health_after"), "health_after"),
        (lambda p: p["edges"].pop("ok->retry"), "edges"),
        (lambda p: p["health_timeline"][0].pop("reason"), "reason"),
        (lambda p: p.update(ok="yes"), "ok"),
    ])
    def test_validator_rejects_mutations(self, quick_result, mutate,
                                         fragment):
        payload = json.loads(render_report(quick_result, timestamp="T"))
        mutate(payload)
        problems = validate_report(payload)
        assert problems
        assert any(fragment in problem for problem in problems)


@pytest.mark.sanitizer_exempt
class TestCLI:
    def test_quick_cli_writes_a_report(self, tmp_path, capsys):
        rc = soak_main(["--quick", "--seed", "0",
                        "--out", str(tmp_path)])
        assert rc == 0
        [path] = list(tmp_path.glob("SOAK_*.json"))
        payload = json.loads(path.read_text())
        assert validate_report(payload) == []
        out = capsys.readouterr().out
        assert "soak clean" in out
        assert "fail-stop" in out  # per-round progress lines printed
