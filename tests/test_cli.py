"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fio_defaults(self):
        args = build_parser().parse_args(["fio"])
        assert args.device == "nvdc"
        assert args.rw == "randread"
        assert args.bs == 4096

    def test_unknown_experiment_id_fails(self):
        assert main(["experiments", "fig99"]) == 2


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "NVDIMM-C" in out
        assert "STT-MRAM" in out

    def test_fio_pmem(self, capsys):
        assert main(["fio", "--device", "pmem", "--nops", "200"]) == 0
        out = capsys.readouterr().out
        assert "KIOPS" in out

    def test_fio_nvdc_multithread(self, capsys):
        assert main(["fio", "--threads", "2", "--nops", "200"]) == 0
        assert "MB/s" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate", "--iterations", "1"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Hypothetical" in out
