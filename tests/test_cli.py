"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fio_defaults(self):
        args = build_parser().parse_args(["fio"])
        assert args.device == "nvdc"
        assert args.rw == "randread"
        assert args.bs == 4096

    def test_unknown_experiment_id_fails(self):
        assert main(["experiments", "fig99"]) == 2

    def test_unknown_experiment_id_names_valid_ids(self, capsys):
        main(["experiments", "fig99"])
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "valid ids" in err

    def test_jobs_flag(self):
        args = build_parser().parse_args(["experiments", "--jobs", "auto"])
        assert args.jobs == "auto"
        args = build_parser().parse_args(["report", "--jobs", "4"])
        assert args.jobs == "4"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.ids == []
        assert args.quick is False
        assert args.out == "."
        assert args.baseline is None
        assert args.max_regression is None


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "NVDIMM-C" in out
        assert "STT-MRAM" in out

    def test_fio_pmem(self, capsys):
        assert main(["fio", "--device", "pmem", "--nops", "200"]) == 0
        out = capsys.readouterr().out
        assert "KIOPS" in out

    def test_fio_nvdc_multithread(self, capsys):
        assert main(["fio", "--threads", "2", "--nops", "200"]) == 0
        assert "MB/s" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate", "--iterations", "1"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Hypothetical" in out

    def test_experiments_parallel_jobs(self, capsys):
        assert main(["experiments", "fig12", "crosscheck",
                     "--jobs", "2"]) == 0
        assert "2 workers" in capsys.readouterr().out


class TestBench:
    def test_bench_writes_file_and_compares(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        assert main(["bench", "fig12", "--out", out_dir]) == 0
        first = capsys.readouterr().out
        assert "wrote" in first
        assert "no prior BENCH file" in first
        # Second run finds the first as implicit baseline and gates on it.
        assert main(["bench", "fig12", "--out", out_dir,
                     "--max-regression", "1000"]) == 0
        second = capsys.readouterr().out
        assert "comparison vs" in second
        assert "gate passes" in second
        benches = list(tmp_path.glob("BENCH_*.json"))
        assert len(benches) == 2

    def test_bench_unknown_id_fails(self, tmp_path):
        assert main(["bench", "fig99", "--out", str(tmp_path)]) == 2

    def test_bench_regression_gate_fails(self, tmp_path, capsys):
        # crosscheck, not fig12: the gate needs a measurably nonzero
        # wall-clock on the current run to trip against the forged
        # impossibly-fast baseline.
        import json

        from repro.perf.bench import load_bench
        out_dir = str(tmp_path)
        assert main(["bench", "crosscheck", "--out", out_dir]) == 0
        capsys.readouterr()
        real = load_bench(next(iter(tmp_path.glob("BENCH_*.json"))).as_posix())
        for entry in real["experiments"]:
            entry["wall_s"] = 1e-9
        forged = tmp_path / "forged.json"
        forged.write_text(json.dumps(real))
        assert main(["bench", "crosscheck", "--out", out_dir,
                     "--baseline", str(forged),
                     "--max-regression", "2.0"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out
