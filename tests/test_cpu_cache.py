"""Tests for the CPU cache: LRU behaviour and explicit coherence ops."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import CPUCache
from repro.cpu.cacheline import CacheLine, line_addr, lines_covering
from repro.units import CACHELINE


class RAM:
    """A trivial byte-addressable backend."""

    def __init__(self, size=1 << 20):
        self.data = bytearray(size)
        self.reads = 0
        self.writes = 0

    def mem_read(self, addr, nbytes):
        self.reads += 1
        return bytes(self.data[addr:addr + nbytes])

    def mem_write(self, addr, data):
        self.writes += 1
        self.data[addr:addr + len(data)] = data


class TestCacheline:
    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            CacheLine(addr=5)

    def test_line_addr(self):
        assert line_addr(0) == 0
        assert line_addr(63) == 0
        assert line_addr(64) == 64
        assert line_addr(130) == 128

    def test_lines_covering(self):
        assert lines_covering(0, 64) == [0]
        assert lines_covering(60, 8) == [0, 64]
        assert lines_covering(0, 4096) == list(range(0, 4096, 64))


class TestLoadsStores:
    def test_store_then_load(self):
        cache = CPUCache(RAM())
        cache.store(100, b"hello")
        assert cache.load(100, 5) == b"hello"

    def test_load_pulls_from_backend(self):
        ram = RAM()
        ram.data[200:205] = b"world"
        cache = CPUCache(ram)
        assert cache.load(200, 5) == b"world"

    def test_dirty_data_stays_in_cache(self):
        """Write-back: stores do not reach the backend until evict/flush."""
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, b"x" * 64)
        assert ram.data[0:64] == bytes(64)
        assert cache.is_dirty(0)

    def test_cross_line_access(self):
        cache = CPUCache(RAM())
        payload = bytes(range(200))
        cache.store(30, payload)
        assert cache.load(30, 200) == payload

    def test_lru_eviction_writes_back_dirty(self):
        ram = RAM()
        cache = CPUCache(ram, capacity_lines=2)
        cache.store(0, b"a" * 64)
        cache.store(64, b"b" * 64)
        cache.store(128, b"c" * 64)   # evicts line 0
        assert ram.data[0:64] == b"a" * 64
        assert not cache.contains(0)
        assert cache.stats.evictions == 1

    def test_hit_rate(self):
        cache = CPUCache(RAM())
        cache.load(0, 64)
        cache.load(0, 64)
        cache.load(0, 64)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1


class TestCoherenceOps:
    def test_clflush_writes_back_and_invalidates(self):
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, b"z" * 64)
        cache.clflush(0)
        assert ram.data[0:64] == b"z" * 64
        assert not cache.contains(0)

    def test_clwb_keeps_line_clean(self):
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, b"z" * 64)
        cache.clwb(0)
        assert ram.data[0:64] == b"z" * 64
        assert cache.contains(0)
        assert not cache.is_dirty(0)

    def test_invalidate_drops_without_writeback(self):
        """Post-cachefill invalidate: stale dirty data must vanish."""
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, b"stale" + bytes(59))
        cache.invalidate(0)
        assert ram.data[0:64] == bytes(64)   # never written back
        assert not cache.contains(0)

    def test_stale_cache_hides_device_dma_until_invalidate(self):
        """The §V-B hazard, reproduced then fixed."""
        ram = RAM()
        cache = CPUCache(ram)
        cache.load(0, 64)                     # CPU caches old contents
        ram.data[0:64] = b"d" * 64            # device DMA (invisible)
        assert cache.load(0, 64) == bytes(64)  # hazard: stale view
        cache.invalidate(0)
        assert cache.load(0, 64) == b"d" * 64  # fixed

    def test_unflushed_victim_gives_device_stale_bytes(self):
        """Dual hazard: device reads DRAM while new data is CPU-cached."""
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, b"new" + bytes(61))
        device_view = ram.data[0:64]           # device DMA out of DRAM
        assert device_view == bytes(64)         # stale!
        cache.flush_range(0, 64)
        cache.sfence()
        assert ram.data[0:64] == b"new" + bytes(61)

    def test_range_ops_cover_page(self):
        ram = RAM()
        cache = CPUCache(ram)
        cache.store(0, bytes(range(256)) * 16)   # 4 KB
        cache.flush_range(0, 4096)
        assert ram.data[0:4096] == bytes(range(256)) * 16
        assert cache.stats.clflushes == 64

    def test_drain_all(self):
        ram = RAM()
        cache = CPUCache(ram)
        for i in range(10):
            cache.store(i * CACHELINE, bytes([i]) * CACHELINE)
        cache.drain_all()
        assert len(cache) == 0
        for i in range(10):
            assert ram.data[i * CACHELINE] == i


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 1023), st.binary(min_size=1,
                                                              max_size=64)),
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_cache_plus_backend_equals_flat_memory(self, writes):
        """Cached view must always equal a flat reference memory."""
        ram = RAM(size=4096)
        cache = CPUCache(ram, capacity_lines=4)   # tiny: force evictions
        reference = bytearray(4096)
        for addr, data in writes:
            data = data[:4096 - addr]
            if not data:
                continue
            cache.store(addr, data)
            reference[addr:addr + len(data)] = data
        assert cache.load(0, 4096) == bytes(reference)
