"""Equivalence of the detector's LUT fast path and the sample-level path.

The fast path (precomputed whole-slot lookup keyed on the six pin
levels) is only legal at ``noise_ber = 0``; these tests drive both
implementations over randomized command streams and require *identical*
observable state: detections, TP/FP/FN counters, accuracy, and the
deserializer word counters — including around the CKE-falling
self-refresh guard, which sits on top of the per-slot match.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.ddr.commands import CAState, CommandKind, encode
from repro.nvmc.refresh_detector import (IDLE_LEVELS, PIN_NAMES,
                                         REF_PATTERN, RefreshDetector,
                                         _build_slot_lut)

ALL_KINDS = list(CommandKind)

command_streams = st.lists(st.sampled_from(ALL_KINDS), min_size=0,
                           max_size=60)

#: Arbitrary pin soup: not all combinations decode to a legal DDR4
#: command, but the detector is a passive tap and must classify *any*
#: pin state identically on both paths.
pin_states = st.tuples(*[st.booleans() for _ in PIN_NAMES])


def _drive(detector: RefreshDetector, states: list[CAState]) -> tuple:
    for i, state in enumerate(states):
        detector.observe(i * 100, state)
    return (detector.detections, detector.true_positives,
            detector.false_positives, detector.false_negatives,
            detector.commands_observed, detector.accuracy,
            [d.words_emitted for d in detector._deserializers])


@given(command_streams)
def test_fast_and_slow_paths_agree_on_command_streams(kinds):
    states = [encode(kind) for kind in kinds]
    fast = RefreshDetector(noise_ber=0.0)
    slow = RefreshDetector(noise_ber=0.0, force_slow=True)
    assert _drive(fast, states) == _drive(slow, states)


@given(st.lists(pin_states, min_size=0, max_size=60))
def test_fast_and_slow_paths_agree_on_arbitrary_pin_states(pins):
    # Chain cke_prev from the previous slot's CKE so the CKE-falling
    # self-refresh guard is exercised the way the bus drives it.
    states = []
    prev_cke = True
    for levels in pins:
        states.append(CAState(*levels, cke_prev=prev_cke))
        prev_cke = levels[0]
    fast = RefreshDetector(noise_ber=0.0)
    slow = RefreshDetector(noise_ber=0.0, force_slow=True)
    assert _drive(fast, states) == _drive(slow, states)


@settings(max_examples=25)
@given(command_streams)
def test_cke_falling_guard_suppresses_sre_on_both_paths(kinds):
    """SRE (REF pins, falling CKE) must never detect on either path."""
    kinds = list(kinds) + [CommandKind.SRE, CommandKind.SRX]
    states = [encode(kind) for kind in kinds]
    for force_slow in (False, True):
        det = RefreshDetector(noise_ber=0.0, force_slow=force_slow)
        _drive(det, states)
        assert det.false_positives == 0
        refs = sum(1 for kind in kinds if kind is CommandKind.REF)
        assert det.true_positives == refs


def test_slot_lut_matches_ref_pattern_exactly():
    """Exhaustive 64-entry check: the LUT detects REF pins and only them."""
    lut = _build_slot_lut()
    assert len(lut) == 2 ** len(PIN_NAMES)
    for levels in itertools.product((False, True), repeat=len(PIN_NAMES)):
        assert lut[levels] == (levels == REF_PATTERN)
    assert lut[IDLE_LEVELS] is False


def test_noisy_detector_never_takes_the_fast_path():
    """With noise_ber > 0 the sample-level model must run (RNG consumed)."""
    det = RefreshDetector(noise_ber=0.5, seed=1)
    state = det._rng.getstate()
    det.observe(0, encode(CommandKind.REF))
    assert det._rng.getstate() != state


def test_fast_path_leaves_rng_untouched():
    det = RefreshDetector(noise_ber=0.0, seed=1)
    state = det._rng.getstate()
    for i in range(10):
        det.observe(i, encode(CommandKind.REF))
    assert det._rng.getstate() == state
    assert det.true_positives == 10
