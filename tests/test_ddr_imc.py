"""Tests for the iMC: refresh timeline arithmetic, refresh loop, WPQ."""

import pytest
from hypothesis import given, strategies as st

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import (IntegratedMemoryController, RefreshTimeline,
                           WritePendingQueue)
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.errors import ConfigError
from repro.sim import Engine
from repro.units import mb, ns, us

SPEC = NVDIMMC_1600


class TestRefreshTimeline:
    def test_window_bounds(self):
        tl = RefreshTimeline(SPEC)
        w = tl.window(0)
        assert w.refresh_ps == SPEC.trefi_ps
        assert w.start_ps == w.refresh_ps + ns(350)
        assert w.end_ps == w.refresh_ps + ns(1250)
        assert w.duration_ps == ns(900)

    def test_windows_are_trefi_apart(self):
        tl = RefreshTimeline(SPEC)
        assert (tl.window(5).refresh_ps - tl.window(4).refresh_ps
                == SPEC.trefi_ps)

    def test_next_window_skips_partial(self):
        tl = RefreshTimeline(SPEC)
        w0 = tl.window(0)
        # Just after w0's start: w0 unusable from its beginning -> w1.
        w = tl.next_window(w0.start_ps + 1)
        assert w.index == 1

    def test_next_window_exact_start_is_usable(self):
        tl = RefreshTimeline(SPEC)
        w0 = tl.window(0)
        assert tl.next_window(w0.start_ps).index == 0

    def test_window_containing(self):
        tl = RefreshTimeline(SPEC)
        w0 = tl.window(0)
        assert tl.window_containing(w0.start_ps + 100).index == 0
        assert tl.window_containing(w0.end_ps) is None
        assert tl.window_containing(w0.refresh_ps) is None  # device busy

    def test_stock_spec_has_no_window(self):
        tl = RefreshTimeline(DDR4_1600)
        assert tl.window_duration_ps == 0
        assert tl.window_containing(tl.window(0).refresh_ps + 1) is None

    def test_host_blocked_during_refresh(self):
        tl = RefreshTimeline(SPEC)
        ref = tl.refresh_time(0)
        assert tl.host_blocked_until(ref + 1) == ref + SPEC.trfc_ps
        # Blocked from the PREA lead-in as well.
        assert (tl.host_blocked_until(ref - SPEC.trp_ps)
                == ref + SPEC.trfc_ps)
        # Free just before PREA and after the programmed tRFC.
        free = ref - SPEC.trp_ps - 1
        assert tl.host_blocked_until(free) == free
        after = ref + SPEC.trfc_ps
        assert tl.host_blocked_until(after) == after

    def test_blocked_fraction(self):
        tl = RefreshTimeline(SPEC)
        expected = (SPEC.trfc_ps + SPEC.trp_ps) / SPEC.trefi_ps
        assert tl.blocked_fraction == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_next_window_is_at_or_after(self, t):
        tl = RefreshTimeline(SPEC)
        w = tl.next_window(t)
        assert w.start_ps >= t
        # And it is the earliest such window.
        if w.index > 0:
            assert tl.window(w.index - 1).start_ps < t

    @given(st.integers(min_value=0, max_value=10**9))
    def test_host_blocked_until_fixed_point(self, t):
        tl = RefreshTimeline(SPEC)
        freed = tl.host_blocked_until(t)
        assert freed >= t
        assert tl.host_blocked_until(freed) == freed


class TestWPQ:
    def test_enqueue_drain(self):
        wpq = WritePendingQueue(capacity=4)
        for i in range(3):
            wpq.enqueue(i * 64, b"x" * 64)
        assert len(wpq) == 3
        drained = wpq.drain()
        assert len(drained) == 3
        assert len(wpq) == 0

    def test_capacity_forces_drain(self):
        wpq = WritePendingQueue(capacity=2)
        spilled = []
        for i in range(4):
            spilled.extend(wpq.enqueue(i, b""))
        assert len(spilled) == 2
        assert len(wpq) == 2


class TestIMC:
    def make(self, spec=SPEC):
        engine = Engine()
        device = DRAMDevice(spec, capacity_bytes=mb(64))
        bus = SharedBus(spec, device)
        imc = IntegratedMemoryController(engine, spec, bus)
        return engine, device, bus, imc

    def test_refresh_process_issues_on_schedule(self):
        engine, device, _bus, imc = self.make()
        imc.start_refresh_process()
        engine.run(until=us(40))
        # Refreshes at 7.8, 15.6, 23.4, 31.2, 39.0 us.
        assert imc.refreshes_issued == 5
        assert device.refreshes_done == 5

    def test_host_read_stalls_through_refresh(self):
        engine, _device, _bus, imc = self.make()
        imc.start_refresh_process()
        engine.run(until=SPEC.trefi_ps + 1)
        ref = imc.timeline.refresh_time(0)
        _, end = imc.host_read(0, 64, ref + 1)
        assert end >= ref + SPEC.trfc_ps

    def test_host_write_read_round_trip(self):
        _engine, _device, _bus, imc = self.make()
        data = bytes(range(64))
        end = imc.host_write(4096, data, 0)
        out, _ = imc.host_read(4096, 64, end)
        assert out == data

    def test_program_timing_before_start(self):
        _engine, _device, _bus, imc = self.make(DDR4_1600)
        imc.program_timing(trfc_ps=ns(1250), trefi_ps=us(3.9))
        assert imc.spec.trfc_ps == ns(1250)
        assert imc.timeline.trefi_ps == us(3.9)

    def test_program_timing_after_start_rejected(self):
        _engine, _device, _bus, imc = self.make()
        imc.start_refresh_process()
        with pytest.raises(ConfigError):
            imc.program_timing(trefi_ps=us(3.9))

    def test_refresh_and_host_traffic_interleave_without_collision(self):
        engine, _device, bus, imc = self.make()
        imc.start_refresh_process()
        # Host reads scattered around the first three refresh windows.
        t = 0
        for i in range(30):
            _, t = imc.host_read((i % 16) * 4096, 64, t + us(1))
        engine.run(until=us(30))
        assert bus.collision_count == 0
