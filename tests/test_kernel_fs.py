"""Tests for the DAX filesystem layer and the Fig. 6 fault flow."""

import pytest

from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU
from repro.device.nvdimmc import NVDIMMCSystem
from repro.errors import KernelError
from repro.kernel.fs import DaxFilesystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def make_stack():
    system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                           firmware=FirmwareModel(step_ps=0),
                           with_cpu_cache=True)
    fs = DaxFilesystem(system.driver)
    mmu = MMU()
    core = CPUCore(0, mmu, system.cpu_cache)
    return system, fs, mmu, core


class TestFiles:
    def test_create_allocates_extents(self):
        _sys, fs, _mmu, _core = make_stack()
        a = fs.create("a", mb(1))
        b = fs.create("b", mb(2))
        assert a.num_pages == 256
        assert b.start_page == a.start_page + a.num_pages

    def test_duplicate_name_rejected(self):
        _sys, fs, _mmu, _core = make_stack()
        fs.create("a", mb(1))
        with pytest.raises(KernelError):
            fs.create("a", mb(1))

    def test_filesystem_full(self):
        _sys, fs, _mmu, _core = make_stack()
        with pytest.raises(KernelError):
            fs.create("huge", mb(64))

    def test_device_page_arithmetic(self):
        _sys, fs, _mmu, _core = make_stack()
        f = fs.create("a", mb(1))
        assert f.device_page(0) == f.start_page
        assert f.device_page(PAGE_4K * 3 + 5) == f.start_page + 3
        with pytest.raises(KernelError):
            f.device_page(mb(1))


class TestFaultFlow:
    def test_first_touch_faults_and_maps(self):
        """Fig. 6: load -> fault -> device_access -> PTE -> retry."""
        system, fs, mmu, core = make_stack()
        f = fs.create("data", mb(1))
        fs.mmap(f, mmu, vaddr=0x100000)
        system.nand.preload(f.start_page, b"\x42" * PAGE_4K)
        value = core.load(0x100000, 8)
        assert value == b"\x42" * 8
        assert fs.fault_count == 1
        assert mmu.stats.faults == 1

    def test_second_touch_hits_tlb_no_fault(self):
        system, fs, mmu, core = make_stack()
        f = fs.create("data", mb(1))
        fs.mmap(f, mmu, vaddr=0x100000)
        core.load(0x100000, 8)
        core.load(0x100040, 8)
        assert fs.fault_count == 1

    def test_store_then_load_through_mapping(self):
        system, fs, mmu, core = make_stack()
        f = fs.create("data", mb(1))
        fs.mmap(f, mmu, vaddr=0x200000)
        core.store(0x200000 + 100, b"persistent")
        assert core.load(0x200000 + 100, 10) == b"persistent"

    def test_faults_advance_driver_clock(self):
        system, fs, mmu, core = make_stack()
        f = fs.create("data", mb(1))
        fs.mmap(f, mmu, vaddr=0x100000)
        core.load(0x100000, 8)
        assert fs.now_ps >= 3 * system.timeline.trefi_ps  # one cachefill

    def test_unaligned_mmap_rejected(self):
        _sys, fs, mmu, _core = make_stack()
        f = fs.create("data", mb(1))
        with pytest.raises(KernelError):
            fs.mmap(f, mmu, vaddr=0x100001)


class TestBlockIO:
    def test_pwrite_pread_round_trip(self):
        _sys, fs, _mmu, _core = make_stack()
        f = fs.create("blob", mb(1))
        payload = bytes(range(256)) * 32   # 8 KB
        end = fs.pwrite(f, PAGE_4K * 2, payload, 0)
        data, _ = fs.pread(f, PAGE_4K * 2, len(payload), end)
        assert data == payload

    def test_unaligned_block_io_rejected(self):
        _sys, fs, _mmu, _core = make_stack()
        f = fs.create("blob", mb(1))
        with pytest.raises(KernelError):
            fs.pwrite(f, 100, bytes(PAGE_4K), 0)
        with pytest.raises(KernelError):
            fs.pread(f, 0, 100, 0)
