"""Unit tests for the health-ladder state machine."""

import pytest

from repro.health.monitor import (LADDER_EDGES, MEDIA_KINDS, TRANSIENT_KINDS,
                                  HealthMonitor, HealthPolicy, HealthState)
from repro.sim.trace import Tracer
from repro.units import us

#: A policy with round numbers the tests can count against.
_POLICY = HealthPolicy(window_ps=round(us(50)), retry_threshold=3,
                       remap_threshold=2, read_only_bad_blocks=4,
                       decay_ps=round(us(100)))


def _monitor(policy: HealthPolicy = _POLICY) -> HealthMonitor:
    return HealthMonitor(policy=policy, tracer=Tracer(enabled=False))


class TestEscalation:
    @pytest.mark.parametrize("kind", sorted(TRANSIENT_KINDS))
    def test_transient_budget_enters_retry(self, kind):
        monitor = _monitor()
        for i in range(_POLICY.retry_threshold - 1):
            monitor.record("nvdc", kind, time_ps=i)
            assert monitor.state is HealthState.OK
        monitor.record("nvdc", kind, time_ps=_POLICY.retry_threshold)
        assert monitor.state is HealthState.RETRY
        assert monitor.reason.startswith(f"{kind}-budget:")

    @pytest.mark.parametrize("kind", sorted(MEDIA_KINDS))
    def test_media_budget_enters_remap(self, kind):
        monitor = _monitor()
        monitor.record("ftl", kind, time_ps=0)
        assert monitor.state is HealthState.OK
        monitor.record("ftl", kind, time_ps=1)
        assert monitor.state is HealthState.REMAP

    def test_lifetime_bad_blocks_enter_read_only(self):
        monitor = _monitor()
        for i in range(_POLICY.read_only_bad_blocks):
            # Spread past the rolling window so only the lifetime
            # counter (never the rolling remap budget... which already
            # fired) drives the final escalation.
            monitor.record("ftl", "bad-block",
                           time_ps=i * 2 * _POLICY.window_ps)
        assert monitor.state is HealthState.READ_ONLY
        assert monitor.reason == "bad-block-budget"
        assert monitor.read_only and not monitor.failed

    @pytest.mark.parametrize(
        "kind", ["remap-exhausted", "space-exhausted", "bad-block-budget"])
    def test_exhaustion_kinds_escalate_immediately(self, kind):
        monitor = _monitor()
        monitor.record("ftl", kind, time_ps=5)
        assert monitor.state is HealthState.READ_ONLY
        assert monitor.reason == kind

    def test_unrecovered_read_is_fatal_only_while_degraded(self):
        monitor = _monitor()
        monitor.record("nand", "unrecovered-read", time_ps=0)
        assert monitor.state is HealthState.OK  # healthy: not fatal
        monitor.record("ftl", "remap-exhausted", time_ps=1)
        monitor.record("nand", "unrecovered-read", time_ps=2)
        assert monitor.state is HealthState.FAIL_STOP
        assert monitor.failed and monitor.read_only


class TestRollingWindow:
    def test_stale_events_age_out(self):
        monitor = _monitor()
        monitor.record("nvdc", "cp-retry", time_ps=0)
        monitor.record("nvdc", "cp-retry", time_ps=1)
        # The third strike lands after the first two left the window.
        monitor.record("nvdc", "cp-retry", time_ps=3 * _POLICY.window_ps)
        assert monitor.state is HealthState.OK

    def test_timeless_events_inherit_the_clock(self):
        monitor = _monitor()
        monitor.note_time(7_000)
        monitor.record("ftl", "remap")  # FTL has no clock of its own
        monitor.record("ftl", "remap")
        assert monitor.state is HealthState.REMAP
        assert monitor.timeline[-1].time_ps == 7_000


class TestDecay:
    def test_retry_decays_to_ok_after_quiet(self):
        monitor = _monitor()
        for i in range(3):
            monitor.record("nvdc", "cp-retry", time_ps=i)
        assert monitor.state is HealthState.RETRY
        monitor.maybe_relax(2 + _POLICY.decay_ps - 1)
        assert monitor.state is HealthState.RETRY  # not quiet enough
        monitor.maybe_relax(2 + _POLICY.decay_ps)
        assert monitor.state is HealthState.OK
        assert monitor.reason == ""

    def test_sticky_states_never_decay(self):
        monitor = _monitor()
        monitor.record("ftl", "space-exhausted", time_ps=0)
        monitor.maybe_relax(10 * _POLICY.decay_ps)
        assert monitor.state is HealthState.READ_ONLY


class TestTimelineAndCoverage:
    def test_full_march_exercises_every_edge(self):
        monitor = _monitor()
        for i in range(3):
            monitor.record("nvdc", "cp-retry", time_ps=i)
        monitor.record("ftl", "remap", time_ps=10)
        monitor.record("ftl", "remap", time_ps=11)
        monitor.record("ftl", "remap-exhausted", time_ps=20)
        monitor.record("nand", "unrecovered-read", time_ps=30)
        edges = monitor.edges_exercised()
        assert set(edges) == {f"{a}->{b}" for a, b in LADDER_EDGES}
        assert all(count == 1 for count in edges.values())
        states = [t.to_state for t in monitor.timeline]
        assert states == ["retry", "remap", "read_only", "fail_stop"]

    def test_transitions_are_traced(self):
        tracer = Tracer(enabled=True, capacity=100)
        monitor = HealthMonitor(policy=_POLICY, tracer=tracer)
        for i in range(3):
            monitor.record("nvdc", "cp-timeout", time_ps=i)
        records = [r for r in tracer.records
                   if r.category == "health.state"]
        assert len(records) == 1
        assert records[0].fields["to_state"] == "retry"
        assert records[0].fields["component"] == "nvdc"

    def test_counters_track_lifetime_totals(self):
        monitor = _monitor()
        for i in range(5):
            monitor.record("nvdc", "cp-retry", time_ps=i)
        assert monitor.counters.get("cp-retry") == 5
        assert monitor.counters.get("never-seen") == 0
