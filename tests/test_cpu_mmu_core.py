"""Tests for the MMU (TLB, faults, DAX handler hook) and CPU cores."""

import pytest

from repro.cpu.cache import CPUCache
from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU, PageFault
from repro.errors import KernelError
from repro.units import PAGE_4K


class RAM:
    def __init__(self, size=1 << 22):
        self.data = bytearray(size)

    def mem_read(self, addr, nbytes):
        return bytes(self.data[addr:addr + nbytes])

    def mem_write(self, addr, data):
        self.data[addr:addr + len(data)] = data


class TestTranslation:
    def test_mapped_page_translates(self):
        mmu = MMU()
        mmu.map_page(vpn=5, pfn=9)
        assert mmu.translate(5 * PAGE_4K + 123) == 9 * PAGE_4K + 123

    def test_unmapped_page_faults(self):
        mmu = MMU()
        with pytest.raises(PageFault):
            mmu.translate(0x1000)
        assert mmu.stats.unresolved_faults == 1

    def test_tlb_caches_translations(self):
        mmu = MMU()
        mmu.map_page(0, 1)
        mmu.translate(0)
        mmu.translate(64)
        assert mmu.stats.tlb_hits == 1
        assert mmu.stats.page_walks == 1

    def test_tlb_capacity_evicts_lru(self):
        mmu = MMU(tlb_entries=2)
        for vpn in range(3):
            mmu.map_page(vpn, vpn + 10)
            mmu.translate(vpn * PAGE_4K)
        mmu.translate(0)   # vpn 0 was evicted: page walk again
        assert mmu.stats.page_walks == 4

    def test_unmap_shoots_down_tlb(self):
        mmu = MMU()
        mmu.map_page(0, 1)
        mmu.translate(0)
        mmu.unmap_page(0)
        with pytest.raises(PageFault):
            mmu.translate(0)

    def test_write_to_readonly_rejected(self):
        mmu = MMU()
        mmu.map_page(0, 1, writable=False)
        mmu.translate(0, write=False)
        with pytest.raises(KernelError):
            mmu.translate(0, write=True)

    def test_dirty_accessed_bits(self):
        mmu = MMU()
        mmu.map_page(0, 1)
        mmu.translate(100, write=True)
        pte = mmu.pte(0)
        assert pte.dirty and pte.accessed


class TestFaultHandlers:
    def test_handler_resolves_fault(self):
        """The §II-A DAX flow: fault -> driver handler -> PTE -> retry."""
        mmu = MMU()
        calls = []

        def handler(vaddr):
            calls.append(vaddr)
            mmu.map_page(vaddr // PAGE_4K, pfn=77)
            return True

        mmu.register_fault_handler(0x10000, 0x10000, handler)
        paddr = mmu.translate(0x10008)
        assert paddr == 77 * PAGE_4K + 8
        assert calls == [0x10008]
        assert mmu.stats.faults == 1

    def test_fault_outside_registered_range_unhandled(self):
        mmu = MMU()
        mmu.register_fault_handler(0x10000, 0x1000, lambda v: True)
        with pytest.raises(PageFault):
            mmu.translate(0x20000)

    def test_handler_lying_about_success_detected(self):
        mmu = MMU()
        mmu.register_fault_handler(0, PAGE_4K, lambda v: True)
        with pytest.raises(KernelError):
            mmu.translate(5)

    def test_handler_returning_false_falls_through(self):
        mmu = MMU()
        mmu.register_fault_handler(0, PAGE_4K, lambda v: False)
        with pytest.raises(PageFault):
            mmu.translate(5)


class TestCPUCore:
    def make(self):
        ram = RAM()
        mmu = MMU()
        cache = CPUCache(ram)
        core = CPUCore(0, mmu, cache)
        return ram, mmu, cache, core

    def test_store_load_round_trip(self):
        _ram, mmu, _cache, core = self.make()
        mmu.map_page(0, 3)
        core.store(10, b"payload")
        assert core.load(10, 7) == b"payload"

    def test_access_spans_pages(self):
        _ram, mmu, _cache, core = self.make()
        mmu.map_page(0, 3)
        mmu.map_page(1, 7)   # physically discontiguous
        data = bytes(range(256)) * 2
        core.store(PAGE_4K - 256, data)
        assert core.load(PAGE_4K - 256, 512) == data

    def test_clflush_range_reaches_backend(self):
        ram, mmu, _cache, core = self.make()
        mmu.map_page(0, 0)
        core.store(0, b"persist!" * 8)
        core.clflush_range(0, 64)
        core.sfence()
        assert ram.data[0:64] == b"persist!" * 8

    def test_stats(self):
        _ram, mmu, _cache, core = self.make()
        mmu.map_page(0, 0)
        core.store(0, bytes(128))
        core.load(0, 64)
        assert core.stats.stores == 1
        assert core.stats.loads == 1
        assert core.stats.bytes_stored == 128
        assert core.stats.bytes_loaded == 64
