"""Tests for the crash-point explorer and its RECOVERY report."""

import json

import pytest

from repro.recovery.explorer import explore
from repro.recovery.report import SCHEMA, render_report, validate_report


@pytest.fixture(scope="module")
def quick_result():
    return explore(seed=0, quick=True)


class TestQuickSweep:
    def test_sweep_is_clean(self, quick_result):
        totals = quick_result.totals()
        assert quick_result.ok
        assert quick_result.baseline_ok
        assert totals["committed_lost"] == 0
        assert totals["torn_served"] == 0
        assert totals["failed_runs"] == 0

    def test_covers_at_least_fifty_cut_points(self, quick_result):
        assert quick_result.totals()["cut_points"] >= 50

    def test_reaches_the_drain(self, quick_result):
        assert quick_result.totals()["drain_cuts"] >= 1
        # Acked-but-uncommitted loss appears only under interrupted drains.
        for outcome in quick_result.outcomes:
            if outcome.acked_uncommitted:
                assert outcome.drain_interrupted

    def test_every_cut_actually_fired(self, quick_result):
        assert sum(quick_result.sites().values()) == len(
            quick_result.outcomes)
        assert all(count > 0 for count in quick_result.sites().values())

    def test_windows_partition_the_cut_points(self, quick_result):
        windows = quick_result.windows()
        points = sorted(o.index for o in quick_result.outcomes)
        assert sum(w["runs"] for w in windows) == len(points)
        assert windows[0]["start"] == points[0]
        assert windows[-1]["end"] == points[-1]
        for earlier, later in zip(windows, windows[1:]):
            assert earlier["end"] < later["start"]

    def test_report_is_deterministic(self, quick_result):
        again = explore(seed=0, quick=True)
        assert render_report(quick_result) == render_report(again)

    def test_report_validates(self, quick_result):
        payload = json.loads(render_report(quick_result))
        assert validate_report(payload) == []
        assert payload["schema"] == SCHEMA
        assert payload["generated_at"] is None

    def test_timestamp_is_injected_verbatim(self, quick_result):
        payload = json.loads(
            render_report(quick_result, timestamp="20260807-000000"))
        assert payload["generated_at"] == "20260807-000000"
        assert validate_report(payload) == []


class TestReportValidation:
    def good(self, quick_result):
        return json.loads(render_report(quick_result))

    def test_rejects_non_object(self):
        assert validate_report([1, 2]) != []
        assert validate_report(None) != []

    def test_rejects_wrong_schema(self, quick_result):
        payload = self.good(quick_result)
        payload["schema"] = "repro.recovery/0"
        assert any("schema" in p for p in validate_report(payload))

    def test_rejects_missing_and_unknown_keys(self, quick_result):
        payload = self.good(quick_result)
        del payload["totals"]
        payload["surprise"] = 1
        problems = validate_report(payload)
        assert any("missing" in p for p in problems)
        assert any("unknown" in p for p in problems)

    def test_rejects_unsorted_cut_points(self, quick_result):
        payload = self.good(quick_result)
        payload["cut_points"] = payload["cut_points"][::-1]
        assert any("sorted" in p for p in validate_report(payload))

    def test_rejects_negative_totals(self, quick_result):
        payload = self.good(quick_result)
        payload["totals"]["committed_lost"] = -1
        assert any("committed_lost" in p for p in validate_report(payload))


class TestCrashCommand:
    def test_quick_cli_run_writes_valid_report(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["crash", "--quick", "--out", str(tmp_path)])
        assert code == 0
        reports = list(tmp_path.glob("RECOVERY_*.json"))
        assert len(reports) == 1
        payload = json.loads(reports[0].read_text())
        assert validate_report(payload) == []
        out = capsys.readouterr().out
        assert "crash sweep clean" in out
