"""Property tests for the deterministic retry/backoff policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (ConfigError, CPProtocolError, CPTimeoutError,
                          DegradedModeError, FailStopError, KernelError,
                          MediaError, UncorrectableError)
from repro.health.retry import (BUDGETS, RetryPolicy, budget_for,
                                jitter_fraction, policy_for)

def _build(max_attempts, base_ps, cap_ps, multiplier, jitter, seed, site):
    """Clamp free-form draws into a valid policy (builds can't raise)."""
    return RetryPolicy(max_attempts=max_attempts, base_ps=base_ps,
                       cap_ps=max(base_ps, cap_ps), multiplier=multiplier,
                       jitter=min(jitter, multiplier - 1.0),
                       seed=seed, site=site)


#: Arbitrary-but-valid policy shapes for the property tests.
_policies = st.builds(
    _build,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_ps=st.integers(min_value=0, max_value=10**9),
    cap_ps=st.integers(min_value=0, max_value=10**12),
    multiplier=st.floats(min_value=1.0, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    site=st.text(max_size=16),
)


class TestDeterminism:
    @given(_policies)
    @settings(max_examples=80)
    def test_identical_seeds_replay_identical_schedules(self, policy):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts, base_ps=policy.base_ps,
            cap_ps=policy.cap_ps, multiplier=policy.multiplier,
            jitter=policy.jitter, seed=policy.seed, site=policy.site)
        assert twin.schedule() == policy.schedule()
        assert twin.total_budget_ps() == policy.total_budget_ps()

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.text(max_size=16), st.integers(min_value=1, max_value=64))
    @settings(max_examples=80)
    def test_jitter_fraction_is_pure_and_bounded(self, seed, site, attempt):
        first = jitter_fraction(seed, site, attempt)
        assert first == jitter_fraction(seed, site, attempt)
        assert 0.0 <= first < 1.0

    def test_different_seeds_decorrelate_jittered_schedules(self):
        base = dict(max_attempts=6, base_ps=1_000_000, cap_ps=10**12,
                    multiplier=2.0, jitter=0.5, site="cp")
        a = RetryPolicy(seed=1, **base)
        b = RetryPolicy(seed=2, **base)
        assert a.schedule() != b.schedule()


class TestMonotonicity:
    @given(_policies)
    @settings(max_examples=120)
    def test_schedule_is_non_decreasing(self, policy):
        schedule = policy.schedule()
        assert all(earlier <= later for earlier, later
                   in zip(schedule, schedule[1:]))

    @given(_policies)
    @settings(max_examples=120)
    def test_cap_is_respected(self, policy):
        assert all(backoff <= policy.cap_ps for backoff in policy.schedule())

    @given(_policies, st.text(max_size=16))
    @settings(max_examples=80)
    def test_site_override_keeps_both_properties(self, policy, site):
        schedule = policy.schedule(site=site)
        assert all(earlier <= later for earlier, later
                   in zip(schedule, schedule[1:]))
        assert all(backoff <= policy.cap_ps for backoff in schedule)


class TestAttemptBudget:
    def test_allows_counts_the_first_try(self):
        policy = RetryPolicy(max_attempts=3, base_ps=0, cap_ps=0)
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)
        assert len(policy.schedule()) == 2

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0, base_ps=0, cap_ps=0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=1, base_ps=10, cap_ps=5)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=1, base_ps=0, cap_ps=0,
                        multiplier=2.0, jitter=1.5)


class TestTaxonomyBudgets:
    def test_most_specific_ancestor_wins(self):
        assert budget_for(CPTimeoutError) is BUDGETS[CPTimeoutError.code]
        assert budget_for(CPProtocolError) is BUDGETS[CPProtocolError.code]
        assert budget_for(UncorrectableError) is \
            BUDGETS[UncorrectableError.code]
        # Unregistered subclasses inherit their nearest registered base.
        assert budget_for(DegradedModeError) is BUDGETS[MediaError.code]
        assert budget_for(FailStopError) is BUDGETS[MediaError.code]

    def test_instances_resolve_like_classes(self):
        err = CPTimeoutError("no ack", attempts=2)
        assert budget_for(err) is BUDGETS[CPTimeoutError.code]

    def test_unregistered_error_is_a_config_error(self):
        with pytest.raises(ConfigError):
            budget_for(KernelError)

    def test_policy_for_applies_caller_overrides(self):
        trefi = 7_800_000
        policy = policy_for(CPTimeoutError, trefi_ps=trefi, seed=3,
                            site="cp")
        budget = BUDGETS[CPTimeoutError.code]
        assert policy.max_attempts == budget.attempts
        assert policy.base_ps == round(budget.base_windows * trefi)
        assert policy.cap_ps == round(budget.cap_windows * trefi)
        pinned = policy_for(CPTimeoutError, max_attempts=2,
                            base_ps=111, cap_ps=999, site="cp")
        assert (pinned.max_attempts, pinned.base_ps, pinned.cap_ps) == \
            (2, 111, 999)
