"""Tests for the endurance projection and refresh-power models."""

import pytest

from repro.ddr.power import (DramPowerParams, power_sweep,
                             refresh_energy_per_ref_j, refresh_power_w)
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.nand.endurance import (paper_device_lifetime,
                                  project_lifetime_years, report)
from repro.nand.spec import ZNAND_64GB
from repro.units import gb, us


class TestEnduranceProjection:
    def test_paper_device_lifetime_bounded_by_its_own_windows(self):
        """The window mechanism throttles writes to 58.3 MB/s, which
        stretches continuous-write life to years (decades at realistic
        duty cycles)."""
        years = paper_device_lifetime()
        assert 2.5 <= years <= 5.0

    def test_lifetime_scales_inversely_with_rate(self):
        slow = project_lifetime_years(ZNAND_64GB, gb(128), 100.0)
        fast = project_lifetime_years(ZNAND_64GB, gb(128), 200.0)
        assert slow == pytest.approx(2 * fast)

    def test_waf_and_spread_discount(self):
        base = project_lifetime_years(ZNAND_64GB, gb(128), 100.0)
        worse = project_lifetime_years(ZNAND_64GB, gb(128), 100.0,
                                       waf=2.0, wear_spread=2.0)
        assert worse == pytest.approx(base / 4)

    def test_zero_rate_is_infinite(self):
        assert project_lifetime_years(ZNAND_64GB, gb(128), 0.0) == (
            float("inf"))

    def test_report_from_real_ftl(self):
        from repro.nand.device import NANDDie
        from repro.nand.ftl import FlashTranslationLayer
        from repro.nand.spec import ZNANDSpec
        from repro.units import kb
        spec = ZNANDSpec(name="t", capacity_bytes=24 * 16 * kb(4),
                         page_bytes=kb(4), pages_per_block=16,
                         planes_per_die=1, dies=1,
                         initial_bad_block_ppm=0)
        ftl = FlashTranslationLayer([NANDDie(spec)], 8 * 16 * kb(4))
        import random
        rng = random.Random(1)
        for i in range(ftl.logical_pages * 6):
            ftl.write_page(rng.randrange(ftl.logical_pages),
                           bytes([i % 256]) * kb(4))
        rep = report(ftl)
        assert rep.total_programs >= rep.host_programs
        assert rep.write_amplification >= 1.0
        assert rep.max_erase_count >= rep.mean_erase_count
        assert 1.0 <= rep.wear_spread < 5.0
        assert 0.0 < rep.life_consumed < 1.0


class TestRefreshPower:
    def test_energy_per_ref_magnitude(self):
        """~(175-47) mA * 1.2 V * 350 ns ~ 54 nJ per die."""
        energy = refresh_energy_per_ref_j(DDR4_1600)
        assert energy == pytest.approx(53.8e-9, rel=0.05)

    def test_power_scales_with_rate(self):
        normal = refresh_power_w(NVDIMMC_1600)
        doubled = refresh_power_w(NVDIMMC_1600.with_trefi(us(3.9)))
        assert doubled == pytest.approx(2 * normal, rel=0.01)

    def test_dimm_refresh_power_magnitude(self):
        """An 18-die RDIMM burns on the order of 0.1 W on refresh."""
        power = refresh_power_w(DDR4_1600)
        assert 0.05 <= power <= 0.5

    def test_sweep_rows(self):
        rows = power_sweep(NVDIMMC_1600)
        assert [r.trefi_us for r in rows] == [7.8, 3.9, 1.95]
        # Power and device bandwidth rise together: the watt per MiB/s
        # is constant (both linear in refresh rate).
        ratio0 = rows[0].power_w / rows[0].device_window_mib_s
        ratio2 = rows[2].power_w / rows[2].device_window_mib_s
        assert ratio2 == pytest.approx(ratio0, rel=0.01)

    def test_custom_params(self):
        cheap = DramPowerParams(idd5b_ma=100.0, idd3n_ma=50.0)
        assert refresh_power_w(DDR4_1600, params=cheap) < refresh_power_w(
            DDR4_1600)
