"""Tests for the §V-C recovery story end to end: fail, drain, remount."""


from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb


def make_system():
    return NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                         firmware=FirmwareModel(step_ps=0),
                         with_cpu_cache=True)


def page_of(tag):
    return bytes([tag % 256]) * PAGE_4K


class TestRemount:
    def test_full_cycle_preserves_data(self):
        system = make_system()
        t = 0
        for page in range(12):
            t = system.driver.write_page(page, page_of(page),
                                         max(t, system.nvmc.ready_ps))
        PowerFailureModel(system.driver).power_fail()
        rebooted = system.remount()
        t = 0
        for page in range(12):
            data, t = rebooted.driver.read_page(
                page, max(t, rebooted.nvmc.ready_ps))
            assert data == page_of(page)

    def test_remount_starts_cold(self):
        system = make_system()
        system.driver.write_page(0, page_of(1), 0)
        PowerFailureModel(system.driver).power_fail()
        rebooted = system.remount()
        assert rebooted.driver.cached_pages == 0
        assert rebooted.driver.free_slot_count == rebooted.region.num_slots
        # First access after reboot is a miss (cachefill from NAND).
        rebooted.op(0, PAGE_4K, False, 0)
        assert rebooted.driver.stats.misses == 1

    def test_unflushed_dram_data_is_lost_without_drain(self):
        """Power failure *without* the battery drain (dead PMIC): only
        data already written back to NAND survives."""
        system = make_system()
        t = system.driver.write_page(0, page_of(7), 0)
        # No power_fail() drain: simulate a dead battery by remounting
        # directly.
        rebooted = system.remount()
        data, _ = rebooted.driver.read_page(0, 0)
        assert data != page_of(7)          # the write never left DRAM

    def test_remount_preserves_configuration(self):
        system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(32),
                               policy="lru", conservative_dirty=False)
        rebooted = system.remount()
        assert rebooted.driver.policy.name == "lru"
        assert not rebooted.driver.conservative_dirty
        assert rebooted.capacity_bytes == system.capacity_bytes

    def test_remounted_system_runs_workloads(self):
        from repro.workloads.fio import FIOJob, FIORunner
        from repro.units import kb
        system = make_system()
        PowerFailureModel(system.driver).power_fail()
        rebooted = system.remount()
        result = FIORunner(rebooted).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(1), nops=100))
        assert result.total_ops == 100
