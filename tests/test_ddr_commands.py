"""Tests for DDR4 command encoding and the refresh-state predicate."""

import pytest
from hypothesis import given, strategies as st

from repro.ddr.commands import (CAState, Command, CommandKind, classify,
                                encode, is_refresh_state)
from repro.errors import ProtocolError


class TestEncoding:
    def test_refresh_encoding_matches_paper(self):
        """§IV-A: REF = CKE, ACT_n, WE_n high; CS_n, RAS_n, CAS_n low."""
        state = encode(CommandKind.REF)
        assert state.cke and state.act_n and state.we_n
        assert not state.cs_n and not state.ras_n and not state.cas_n

    def test_all_encodings_are_mutually_exclusive(self):
        """§IV-A: 'the CA states of all DDR4 commands are mutually
        exclusive' — no two kinds share a full pin tuple + CKE history."""
        seen = {}
        for kind in CommandKind:
            state = encode(kind)
            key = state.pins() + (state.cke_prev,)
            # RD/RDA, WR/WRA, PRE/PREA legitimately share pins (they
            # differ in A10 only, which is not monitored).
            aliases = {
                CommandKind.RDA: CommandKind.RD,
                CommandKind.WRA: CommandKind.WR,
                CommandKind.PREA: CommandKind.PRE,
            }
            canonical = aliases.get(kind, kind)
            if key in seen:
                assert seen[key] == canonical, (
                    f"{kind} collides with {seen[key]}")
            seen[key] = canonical

    def test_deselect_has_cs_high(self):
        assert encode(CommandKind.DES).cs_n

    def test_act_has_act_n_low(self):
        assert not encode(CommandKind.ACT).act_n


class TestRefreshPredicate:
    def test_only_ref_matches(self):
        for kind in CommandKind:
            state = encode(kind)
            expected = kind is CommandKind.REF
            assert is_refresh_state(state) is expected, kind

    def test_sre_is_not_refresh(self):
        """Self-refresh entry shares the REF pin state but CKE falls —
        treating it as a normal refresh would start a device transfer
        inside an unbounded self-refresh window."""
        assert not is_refresh_state(encode(CommandKind.SRE))

    def test_cke_falling_with_ref_pins_is_sre(self):
        state = CAState(cke=False, cs_n=False, act_n=True, ras_n=False,
                        cas_n=False, we_n=True, cke_prev=True)
        assert classify(state) is CommandKind.SRE
        assert not is_refresh_state(state)

    @given(st.tuples(*[st.booleans()] * 7))
    def test_predicate_matches_exactly_one_pattern(self, bits):
        state = CAState(*bits)
        expected = (state.cke and state.cke_prev and not state.cs_n
                    and state.act_n and not state.ras_n
                    and not state.cas_n and state.we_n)
        assert is_refresh_state(state) is expected


class TestClassify:
    @pytest.mark.parametrize("kind,expected", [
        (CommandKind.DES, CommandKind.DES),
        (CommandKind.NOP, CommandKind.NOP),
        (CommandKind.ACT, CommandKind.ACT),
        (CommandKind.RD, CommandKind.RD),
        (CommandKind.RDA, CommandKind.RD),     # A10 not monitored
        (CommandKind.WR, CommandKind.WR),
        (CommandKind.WRA, CommandKind.WR),
        (CommandKind.PRE, CommandKind.PRE),
        (CommandKind.PREA, CommandKind.PRE),
        (CommandKind.REF, CommandKind.REF),
        (CommandKind.SRE, CommandKind.SRE),
        (CommandKind.SRX, CommandKind.SRX),
        (CommandKind.MRS, CommandKind.MRS),
        (CommandKind.ZQCL, CommandKind.ZQCL),
    ])
    def test_round_trip(self, kind, expected):
        assert classify(encode(kind)) is expected

    def test_cke_fall_with_wrong_pins_rejected(self):
        state = CAState(cke=False, cs_n=False, act_n=True, ras_n=True,
                        cas_n=True, we_n=True, cke_prev=True)
        with pytest.raises(ProtocolError):
            classify(state)


class TestCommandObject:
    def test_str_includes_address(self):
        cmd = Command(CommandKind.ACT, bank=3, row=100)
        assert "ACT" in str(cmd) and "b3" in str(cmd) and "r100" in str(cmd)

    def test_ca_state_property(self):
        cmd = Command(CommandKind.REF)
        assert is_refresh_state(cmd.ca_state)

    def test_defaults_unaddressed(self):
        cmd = Command(CommandKind.PREA)
        assert cmd.bank == -1 and cmd.row == -1 and cmd.column == -1
