"""Coverage for remaining corners: CLI report, config builds, trace
replay on NVDIMM-C, process error propagation."""

import os

import pytest

from repro.config import ASIC_CONFIG, EXPERIMENT_CONFIG
from repro.sim import Engine, Timeout
from repro.sim.process import spawn
from repro.units import PAGE_4K, kb, mb
from repro.workloads.trace import Access, AccessTrace


class TestConfigBuilds:
    def test_asic_config_builds_and_runs(self):
        system = ASIC_CONFIG.scaled(4).build()
        assert system.driver.use_merged_commands
        assert system.nvmc.firmware.step_ps == 0
        end = system.op(0, kb(4), False, 0)
        assert end > 0

    def test_experiment_config_uncached_vs_asic(self):
        """The ASIC configuration beats the PoC on the miss path."""
        def miss_latency(config):
            system = config.scaled(16).build()
            nslots = system.region.num_slots
            system.nand.preload(nslots + 1, b"\x11" * PAGE_4K)
            t = 0
            for page in range(nslots):
                _, t = system.driver.fault(page, t, True)
            start = max(t, system.nvmc.ready_ps)
            end = system.op((nslots + 1) * PAGE_4K, kb(4), False, start)
            return end - start

        assert miss_latency(ASIC_CONFIG) < miss_latency(EXPERIMENT_CONFIG)


class TestTraceReplayOnNvdc:
    def test_replay_exercises_the_miss_path(self):
        from repro.device.nvdimmc import NVDIMMCSystem
        system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(16))
        trace = AccessTrace([Access(i * PAGE_4K, kb(4), i % 2 == 0)
                             for i in range(20)])
        end = trace.replay(system)
        assert end > 0
        assert system.driver.stats.misses == 20

    def test_replay_respects_now_floor(self):
        from repro.device.nvdimmc import NVDIMMCSystem
        system = NVDIMMCSystem(cache_bytes=mb(2), device_bytes=mb(16))
        trace = AccessTrace([Access(0, kb(4), False)])
        first_end = trace.replay(system)
        second_end = trace.replay(system)
        assert second_end >= first_end


class TestCliReport:
    def test_report_writes_files(self, tmp_path, monkeypatch):
        """`python -m repro report` produces the three artefacts.

        Run against a trimmed experiment registry so the test stays
        fast."""
        import repro.experiments.runner as runner_module
        from repro.cli import main
        monkeypatch.chdir(tmp_path)
        trimmed = {"fig12": runner_module.ALL_EXPERIMENTS["fig12"],
                   "table1": runner_module.ALL_EXPERIMENTS["table1"]}
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS", trimmed)
        assert main(["report"]) == 0
        for name in ("EXPERIMENTS.md", "results.csv", "results.json"):
            assert os.path.exists(tmp_path / name), name
        text = (tmp_path / "EXPERIMENTS.md").read_text()
        assert "## Summary" in text
        assert "fig12" in text


class TestProcessErrors:
    def test_exception_propagates_from_process(self):
        engine = Engine()

        def exploder():
            yield Timeout(10)
            raise RuntimeError("boom")

        spawn(engine, exploder())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run()

    def test_other_processes_unaffected_before_failure(self):
        engine = Engine()
        trail = []

        def worker():
            yield Timeout(5)
            trail.append("worker")

        def exploder():
            yield Timeout(10)
            raise RuntimeError("boom")

        spawn(engine, worker())
        spawn(engine, exploder())
        with pytest.raises(RuntimeError):
            engine.run()
        assert trail == ["worker"]
