"""Tests for FIO job-file parsing."""

import pytest

from repro.errors import ConfigError
from repro.workloads.fio_jobfile import (PAPER_FIG8_JOBFILE, parse_jobfile,
                                         parse_size)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096),
        ("4k", 4096),
        ("4K", 4096),
        ("32m", 32 << 20),
        ("1g", 1 << 30),
        ("1.5k", 1536),
    ])
    def test_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")


class TestParseJobfile:
    def test_paper_jobfile(self):
        jobs = parse_jobfile(PAPER_FIG8_JOBFILE)
        assert [j.name for j in jobs] == ["fig8-randread",
                                          "fig8-randwrite"]
        assert all(j.bs == 4096 for j in jobs)
        assert jobs[0].rw == "randread"
        assert jobs[1].rw == "randwrite"

    def test_global_inheritance_and_override(self):
        text = """
        [global]
        bs=4k
        numjobs=2

        [a]
        rw=read

        [b]
        rw=randwrite
        bs=64k
        """
        jobs = parse_jobfile(text)
        assert jobs[0].bs == 4096 and jobs[0].numjobs == 2
        assert jobs[1].bs == 65536 and jobs[1].numjobs == 2

    def test_comments_ignored(self):
        text = "[j]\nrw=randread # trailing\n; full-line comment\nbs=4k\n"
        jobs = parse_jobfile(text)
        assert jobs[0].rw == "randread"

    def test_option_before_section_rejected(self):
        with pytest.raises(ConfigError):
            parse_jobfile("bs=4k\n[j]\n")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            parse_jobfile("[global]\nbs=4k\n")

    def test_non_dax_engine_rejected(self):
        with pytest.raises(ConfigError, match="ioengine"):
            parse_jobfile("[j]\nioengine=libaio\n")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError, match="unsupported"):
            parse_jobfile("[j]\nzonemode=zbd\n")

    def test_parsed_jobs_run(self):
        from repro.device.nvdimmc import PmemSystem
        from repro.units import mb
        from repro.workloads.fio import FIORunner
        jobs = parse_jobfile("[t]\nrw=randread\nbs=4k\nsize=8m\nnops=200\n")
        result = FIORunner(PmemSystem(device_bytes=mb(16))).run(jobs[0])
        assert result.total_ops == 200
