"""repro.fleet.chaos: fault plans, retry/failover/evacuation, report."""

import json

import pytest

from repro.errors import ConfigError
from repro.fleet.chaos import (
    ChaosConfig,
    ChaosEvent,
    ChaosRoles,
    ChaosShardOutcome,
    plan_events,
    plan_roles,
    route_failover,
    run_chaos,
)
from repro.fleet.chaos_report import SCHEMA, render_report, validate_report
from repro.fleet.cli import main as fleet_main
from repro.fleet.shard import Request, ShardResult, tenant_bases
from repro.fleet.tenants import default_tenants

QUICK = dict(quick=True, shards=3, requests=4000, seed=3)


@pytest.fixture(scope="module")
def chaos_result():
    """One shared small campaign (the prefix build dominates cost)."""
    return run_chaos(**QUICK)


# -- config ------------------------------------------------------------------------


def test_config_rejects_bad_values():
    with pytest.raises(ConfigError, match="shards >= 2"):
        ChaosConfig(shards=1)
    with pytest.raises(ConfigError):
        ChaosConfig(shards=3, queue_bound=0)
    with pytest.raises(ConfigError):
        ChaosConfig(shards=3, worker_timeout_s=0)


def test_config_defaults():
    assert ChaosConfig(quick=True).request_count == 24_000
    assert ChaosConfig().request_count == 400_000
    assert ChaosConfig(requests=123).request_count == 123
    # The underlying fleet config never pre-wears shards: all wear
    # arrives through the scheduled fault plan.
    assert ChaosConfig(quick=True).fleet_config().wear_shards == 0


# -- the fault plan ----------------------------------------------------------------


def test_roles_are_seeded_and_on_ring():
    roles = plan_roles(ChaosConfig(**QUICK))
    assert roles == plan_roles(ChaosConfig(**QUICK))
    assert 0 <= roles.kill_shard < 3
    assert roles.hedge_target == (roles.kill_shard + 1) % 3
    other = plan_roles(ChaosConfig(quick=True, shards=3, seed=1))
    assert isinstance(other.kill_shard, int)


def test_event_schedules_differ_by_role():
    roles = ChaosRoles(kill_shard=1, hedge_target=2)
    kill = plan_events(1, roles, plan_requests=1000)
    survivor = plan_events(0, roles, plan_requests=1000)
    assert len(kill) > len(survivor)
    kinds = {event.kind for event in kill}
    assert kinds == {"program-fail", "ecc-burst", "power-cut"}
    # Enough program failures to overrun the chaos bad-block budget.
    assert sum(event.magnitude for event in kill
               if event.kind == "program-fail") >= 4
    for event in kill + survivor:
        assert 0 <= event.at_request <= 1000
    # Positions scale with the plan size but stay ordered.
    assert [e.at_request for e in kill] == \
        sorted(e.at_request for e in kill)


# -- the routing pass --------------------------------------------------------------


def _synthetic_outcome(shard: int, state: str, refused=(), evac=()):
    result = ShardResult(shard=shard, tenants=[])
    result.health = {"state": state, "worst": state, "counters": {},
                     "transitions": 0}
    return ChaosShardOutcome(result=result,
                             refused_requests=tuple(refused),
                             evac_pages=tuple(evac))


def test_route_failover_picks_ring_donor_and_excludes_hedged():
    tenants = default_tenants(quick=True)
    bases = tenant_bases(tenants)
    hedged = Request(seq=5, tenant=0, arrival_ps=10, key=3, write=True,
                     version=1)
    bare = Request(seq=6, tenant=2, arrival_ps=20, key=4, write=True,
                   version=1)
    outcomes = [
        _synthetic_outcome(0, "ok"),
        _synthetic_outcome(
            1, "read_only", refused=[hedged, bare],
            evac=[(bases[0] + 3, b"hedged-page"), (100, b"clean")]),
        _synthetic_outcome(2, "ok"),
    ]
    roles = ChaosRoles(kill_shard=1, hedge_target=2)
    plan = route_failover(outcomes, roles,
                          hedged_seqs=frozenset({5}), bases=bases)
    assert plan.impaired == (1,)
    assert plan.survivors == (0, 2)
    [evac] = plan.evacuations
    assert (evac.source, evac.donor) == (1, 2)   # ring-next survivor
    # The hedged page is excluded (the donor already holds the newer
    # hedge copy); the clean page is copied.
    assert evac.pages_committed == 2
    assert evac.pages_excluded_hedged == 1
    assert evac.pages == ((100, b"clean"),)
    # The hedged refusal is not failed over; the bare one goes to the
    # donor, and untouched survivors get nothing.
    assert plan.skipped_hedged == 1
    assert plan.failover[2] == (bare,)
    assert plan.failover[0] == ()


def test_route_failover_wraps_the_ring():
    outcomes = [
        _synthetic_outcome(0, "ok"),
        _synthetic_outcome(1, "ok"),
        _synthetic_outcome(2, "fail_stop"),
    ]
    roles = ChaosRoles(kill_shard=2, hedge_target=0)
    plan = route_failover(outcomes, roles, hedged_seqs=frozenset(),
                          bases=(0,))
    assert plan.impaired == (2,)
    assert plan.survivors == (0, 1)
    # The ring wraps past the end: shard 2's donor is shard 0, and a
    # fail_stop shard exports nothing (its sweep was refused).
    [evac] = plan.evacuations
    assert (evac.source, evac.donor) == (2, 0)
    assert evac.pages == ()
    assert evac.pages_committed == 0


# -- end-to-end campaigns ----------------------------------------------------------


def test_campaign_kills_evacuates_and_stays_lossless(chaos_result):
    result = chaos_result
    assert result.ok
    assert result.data_loss == 0
    assert result.violations == 0
    assert result.demonstrated
    # The planned kill shard — and only it — left the write path.
    assert result.routing.impaired == (result.roles.kill_shard,)
    killed = result.outcomes[result.roles.kill_shard]
    assert killed.result.health["state"] == "read_only"
    assert killed.power_cuts >= 1
    assert killed.remounts    # the cut ran a cold remount audit
    assert killed.result.refused > 0


def test_campaign_evacuation_accounting(chaos_result):
    result = chaos_result
    [evac] = result.routing.evacuations
    assert evac.source == result.roles.kill_shard
    assert evac.donor in result.routing.survivors
    assert evac.pages_committed == \
        len(evac.pages) + evac.pages_excluded_hedged
    donor = result.outcomes[evac.donor]
    assert donor.evac_in_pages == len(evac.pages)
    assert donor.evac_in_failures == 0
    # Evacuated pages joined the donor's verified sweep.
    assert donor.result.sweep_pages >= donor.evac_in_pages


def test_campaign_tenant_availability(chaos_result):
    result = chaos_result
    for view in result.tenants:
        assert view.primary.offered > 0
        assert view.success_ppm >= view.chaos_slo_ppm
        assert view.ok
        served = (view.primary.completed + view.failover.completed
                  + view.rescued)
        assert served <= view.primary.offered
        assert view.hedge_completed <= view.hedge_planned
        assert view.rescued <= view.hedge_completed
    # The OLTP class was hedged; someone was rescued by it.
    oltp = next(v for v in result.tenants if v.spec.mix == "mixed")
    assert oltp.hedge_planned > 0
    assert oltp.rescued > 0


def test_campaign_front_end_retry_rode_out_faults(chaos_result):
    result = chaos_result
    killed = result.outcomes[result.roles.kill_shard]
    # The ECC burst escaped the device read-retry ladder and the power
    # cut interrupted one request; the bounded front-end retry re-issued
    # both and the requests completed.
    assert killed.retries > 0
    assert killed.retry_successes > 0


def test_campaign_is_deterministic_and_jobs_invariant(chaos_result):
    text = render_report(chaos_result)
    rerun = render_report(run_chaos(**QUICK))
    assert rerun == text
    fanned = render_report(run_chaos(**QUICK, jobs=2))
    assert fanned == text


# -- report schema -----------------------------------------------------------------


def test_chaos_report_round_trips(chaos_result):
    payload = json.loads(render_report(chaos_result))
    assert payload["schema"] == SCHEMA == "repro.fleet.chaos/1"
    assert payload["generated_at"] is None
    assert validate_report(payload) == []
    assert payload["ok"] is True
    assert all(payload["gates"].values())
    assert payload["totals"]["requests"] == 4000
    assert payload["totals"]["data_loss"] == 0
    assert payload["totals"]["evacuated_pages"] > 0
    roles = {entry["role"] for entry in payload["shards"]}
    assert roles == {"kill", "hedge-target", "survivor"}
    kill = next(entry for entry in payload["shards"]
                if entry["role"] == "kill")
    assert kill["health"]["state"] == "read_only"
    assert kill["remounts"]


@pytest.mark.parametrize("mutate,needle", [
    (lambda p: p.__setitem__("schema", "repro.fleet.chaos/9"), "schema"),
    (lambda p: p.pop("gates"), "missing report keys"),
    (lambda p: p.__setitem__("extra", 1), "unknown report keys"),
    (lambda p: p["plan"]["events"]["0"][0].__setitem__("kind", "gamma"),
     "kind"),
    (lambda p: p["routing"].pop("evacuations"), "routing keys"),
    (lambda p: p["routing"]["evacuations"][0].pop("donor"),
     "evacuations[0]"),
    (lambda p: p["tenants"][0].__setitem__("success_ppm", -1),
     "non-negative int"),
    (lambda p: p["tenants"][0]["failover"].pop("latency"),
     "failover"),
    (lambda p: p["shards"][0].__setitem__("role", "bystander"), "role"),
    (lambda p: p["shards"][0].__setitem__("final_pass", 3),
     "final_pass"),
    (lambda p: p["gates"].__setitem__("zero_data_loss", "yes"),
     "gates.zero_data_loss"),
    (lambda p: p["ok"] is not None and p.__setitem__("ok", 1),
     "ok must be a bool"),
])
def test_chaos_report_rejects_mutations(chaos_result, mutate, needle):
    payload = json.loads(render_report(chaos_result))
    mutate(payload)
    problems = validate_report(payload)
    assert problems
    assert any(needle in problem for problem in problems)


def test_remount_audit_is_validated(chaos_result):
    payload = json.loads(render_report(chaos_result))
    kill = next(entry for entry in payload["shards"]
                if entry["role"] == "kill")
    kill["remounts"][0]["health_state"] = "undead"
    problems = validate_report(payload)
    assert any("health_state" in problem for problem in problems)


# -- cli ---------------------------------------------------------------------------


def test_cli_chaos_writes_valid_report(tmp_path, capsys):
    code = fleet_main(["chaos", "--quick", "--shards", "3",
                       "--requests", "4000", "--seed", "3", "--out",
                       str(tmp_path)])
    assert code == 0
    reports = list(tmp_path.glob("CHAOS_*.json"))
    assert len(reports) == 1
    payload = json.loads(reports[0].read_text())
    assert validate_report(payload) == []
    assert payload["generated_at"] is not None
    out = capsys.readouterr().out
    assert "chaos clean" in out
    assert "kill shard" in out


def test_cli_chaos_rejects_bad_flags(tmp_path, capsys):
    assert fleet_main(["chaos", "--shards", "1", "--out",
                       str(tmp_path)]) == 2
    assert fleet_main(["chaos", "--worker-timeout", "0", "--out",
                       str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "shards >= 2" in err


def test_top_level_cli_has_fleet_chaos():
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(
        ["fleet", "chaos", "--quick", "--shards", "3"])
    assert args.command == "fleet"
    assert args.fleet_command == "chaos"
    assert args.shards == 3
