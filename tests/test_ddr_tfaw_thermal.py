"""Tests for tFAW enforcement and thermal refresh throttling."""

import pytest

from repro.ddr.bus import SharedBus
from repro.ddr.commands import Command, CommandKind
from repro.ddr.controller import DDR4Controller
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.ddr.thermal import (EXTENDED_MAX_C, NORMAL_MAX_C,
                               operating_point, trefi_for_temperature)
from repro.errors import ConfigError, TimingViolationError
from repro.units import mb, us

SPEC = DDR4_1600


class TestTFAW:
    def make(self):
        device = DRAMDevice(SPEC, capacity_bytes=mb(64))
        bus = SharedBus(SPEC, device)
        return device, bus

    def test_four_fast_activates_allowed(self):
        device, bus = self.make()
        for bank in range(4):
            bus.issue("imc", Command(CommandKind.ACT, bank=bank, row=0),
                      bank * SPEC.trrd_ps)
        assert sum(b.stats["activates"] for b in device.banks) == 4

    def test_fifth_activate_within_tfaw_rejected(self):
        device, _bus = self.make()
        for bank in range(4):
            device.execute(Command(CommandKind.ACT, bank=bank, row=0),
                           bank * SPEC.trrd_ps)
        with pytest.raises(TimingViolationError, match="tFAW"):
            device.execute(Command(CommandKind.ACT, bank=4, row=0),
                           3 * SPEC.trrd_ps + 1)

    def test_fifth_activate_after_tfaw_allowed(self):
        device, _bus = self.make()
        for bank in range(4):
            device.execute(Command(CommandKind.ACT, bank=bank, row=0),
                           bank * SPEC.trrd_ps)
        device.execute(Command(CommandKind.ACT, bank=4, row=0),
                       SPEC.tfaw_ps)

    def test_controller_paces_itself(self):
        """The controller defers its fifth ACT instead of violating."""
        device, bus = self.make()
        ctrl = DDR4Controller("imc", SPEC, bus)
        # Five row-miss reads to five banks back to back.
        t = 0
        same_row_stride = SPEC.row_size_bytes
        for i in range(5):
            _, t = ctrl.read(i * same_row_stride, 64, t)
        acts = sum(b.stats["activates"] for b in device.banks)
        assert acts == 5      # no exception: pacing handled it


class TestThermal:
    def test_normal_range_keeps_base_trefi(self):
        assert trefi_for_temperature(40) == us(7.8)
        assert trefi_for_temperature(NORMAL_MAX_C) == us(7.8)

    def test_extended_range_halves_trefi(self):
        """§II-B: tREFI adjusted to 3.9 us above 85°C."""
        assert trefi_for_temperature(86) == us(3.9)
        assert trefi_for_temperature(EXTENDED_MAX_C) == us(3.9)

    def test_beyond_spec_rejected(self):
        with pytest.raises(ConfigError):
            trefi_for_temperature(96)

    def test_hot_module_doubles_device_windows(self):
        cool = operating_point(40)
        hot = operating_point(90)
        assert hot.doubled and not cool.doubled
        assert hot.device_windows_per_sec == pytest.approx(
            2 * cool.device_windows_per_sec)
        # The §V-A ceilings: 500.8 -> 1001.6 MiB/s.
        assert cool.device_ceiling_mb_s == pytest.approx(500.8, abs=1)
        assert hot.device_ceiling_mb_s == pytest.approx(1001.6, abs=2)

    def test_custom_spec_base(self):
        point = operating_point(90, spec=NVDIMMC_1600.with_trefi(us(15.6)))
        assert point.trefi_ps == us(7.8)
