"""Patrol-scrub tests: idle-window discipline and the ScrubSanitizer."""

import pytest

from repro.check.sanitizers import ScrubSanitizer
from repro.device.nvdimmc import NVDIMMCSystem
from repro.health.scrub import ScrubConfig
from repro.sim.trace import TraceRecord
from repro.units import PAGE_4K, kb, mb, us


def _written_system(pages: int = 96, **kwargs) -> tuple[NVDIMMCSystem, int]:
    """A small system with ``pages`` committed pages; returns (sys, t).

    The default footprint exceeds the 64-slot cache, so evictions push
    dirty pages to the Z-NAND and the patrol's NAND leg has mapped
    pages to verify.
    """
    system = NVDIMMCSystem(cache_bytes=kb(256), device_bytes=mb(4), **kwargs)
    t = round(us(1))
    for page in range(pages):
        t = system.driver.write_page(page, bytes([page % 256]) * PAGE_4K, t)
    return system, t


class TestPatrol:
    def test_idle_windows_do_real_work(self):
        system, t = _written_system()
        scrubber = system.scrubber
        trefi = system.spec.trefi_ps
        idle_from = max(t, system.nvmc.ready_ps)
        used = scrubber.patrol(idle_from, idle_from + 24 * trefi)
        stats = scrubber.stats
        assert used > 0 and used == stats.windows_used
        assert stats.windows_scanned >= stats.windows_used
        assert stats.dram_slots_refreshed > 0
        assert stats.nand_pages_verified > 0

    def test_busy_windows_are_skipped_whole(self):
        system, t = _written_system()
        scrubber = system.scrubber
        trefi = system.spec.trefi_ps
        idle_from = max(t, system.nvmc.ready_ps)
        until = idle_from + 16 * trefi
        system.nvmc.ready_ps = until  # the host owns every window
        used = scrubber.patrol(idle_from, until)
        assert used == 0
        assert scrubber.stats.windows_used == 0
        assert scrubber.stats.windows_busy == scrubber.stats.windows_scanned
        assert scrubber.stats.windows_busy > 0

    def test_worn_blocks_are_proactively_relocated(self):
        # wear_relocate_fraction=0 marks every verified page decaying.
        system, t = _written_system(
            scrub_config=ScrubConfig(wear_relocate_fraction=0.0))
        scrubber = system.scrubber
        trefi = system.spec.trefi_ps
        idle_from = max(t, system.nvmc.ready_ps)
        scrubber.patrol(idle_from, idle_from + 24 * trefi)
        assert scrubber.stats.relocations > 0
        assert system.health.counters.get("scrub-relocate") > 0

    def test_patrol_is_invisible_to_later_reads(self):
        system, t = _written_system(pages=24)
        trefi = system.spec.trefi_ps
        idle_from = max(t, system.nvmc.ready_ps)
        system.scrubber.patrol(idle_from, idle_from + 24 * trefi)
        t = max(idle_from + 24 * trefi, system.nvmc.ready_ps)
        for page in range(24):
            data, t = system.driver.read_page(page, t)
            assert data == bytes([page % 256]) * PAGE_4K


def _scrub_record(window: int, *, owner: str = "nvmc-t",
                  win_start: int = 10_000, win_end: int = 20_000,
                  start: int | None = None,
                  end: int | None = None) -> TraceRecord:
    return TraceRecord(
        time_ps=win_start, category="health.scrub", message="patrol window",
        fields={"owner": owner, "window": window, "win_start": win_start,
                "win_end": win_end,
                "start_ps": win_start if start is None else start,
                "end_ps": win_end if end is None else end,
                "slots": 1, "pages": 1, "relocated": 0})


def _dma_record(window: int, *, owner: str = "nvmc-t") -> TraceRecord:
    return TraceRecord(time_ps=0, category="nvmc.dma", message="burst",
                       fields={"owner": owner, "window": window})


class TestScrubSanitizer:
    def test_clean_stream_has_no_violations(self):
        sanitizer = ScrubSanitizer()
        sanitizer.feed(_dma_record(3))
        sanitizer.feed(_scrub_record(4))
        sanitizer.feed(_dma_record(5))
        assert sanitizer.violations == []

    def test_bus_span_escaping_its_window_is_flagged(self):
        sanitizer = ScrubSanitizer()
        sanitizer.feed(_scrub_record(4, end=25_000))  # past win_end
        assert [v.rule for v in sanitizer.violations] == \
            ["scrub-window-escape"]

    @pytest.mark.parametrize("scrub_first", [True, False])
    def test_shared_window_is_a_collision_either_order(self, scrub_first):
        sanitizer = ScrubSanitizer()
        records = [_scrub_record(7), _dma_record(7)]
        if not scrub_first:
            records.reverse()
        for record in records:
            sanitizer.feed(record)
        assert [v.rule for v in sanitizer.violations] == ["scrub-collision"]

    def test_owners_do_not_cross_contaminate(self):
        sanitizer = ScrubSanitizer()
        sanitizer.feed(_dma_record(9, owner="nvmc-a"))
        sanitizer.feed(_scrub_record(9, owner="nvmc-b"))
        assert sanitizer.violations == []
