"""Tests for experiment-record export and run diffing."""

import csv
import io

from repro.analysis.export import diff_runs, load_json, to_csv, to_json
from repro.analysis.results import ExperimentRecord


def sample_records():
    a = ExperimentRecord("fig8", "randrw")
    a.add("cached read", "MB/s", 1835, 1834.8)
    a.add("extra", "count", None, 3)
    a.note("a note")
    b = ExperimentRecord("fig12", "td")
    b.add("tD=0", "MB/s", 1503, 1505.9)
    return [a, b]


class TestCSV:
    def test_header_and_rows(self):
        text = to_csv(sample_records())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "experiment_id"
        assert len(rows) == 4   # header + 3 comparisons
        assert rows[1][0] == "fig8"
        assert rows[2][4] == ""          # paper=None -> empty cell

    def test_ratio_column(self):
        text = to_csv(sample_records())
        rows = list(csv.reader(io.StringIO(text)))
        assert float(rows[1][6]) == round(1834.8 / 1835, 6)


class TestJSON:
    def test_round_trip(self):
        records = sample_records()
        loaded = load_json(to_json(records))
        assert len(loaded) == 2
        assert loaded[0].experiment_id == "fig8"
        assert loaded[0].comparisons[0].measured == 1834.8
        assert loaded[0].notes == ["a note"]

    def test_none_paper_survives(self):
        loaded = load_json(to_json(sample_records()))
        assert loaded[0].comparisons[1].paper is None


class TestDiff:
    def test_identical_runs_are_clean(self):
        assert diff_runs(sample_records(), sample_records()) == []

    def test_drift_detected(self):
        old = sample_records()
        new = sample_records()
        drifted = ExperimentRecord("fig8", "randrw")
        drifted.add("cached read", "MB/s", 1835, 1600.0)   # -13 %
        drifted.add("extra", "count", None, 3)
        new[0] = drifted
        report = diff_runs(old, new)
        assert len(report) == 1
        assert "DRIFT" in report[0]

    def test_small_wiggle_tolerated(self):
        old = sample_records()
        new = sample_records()
        wiggled = ExperimentRecord("fig8", "randrw")
        wiggled.add("cached read", "MB/s", 1835, 1834.8 * 1.01)
        wiggled.add("extra", "count", None, 3)
        new[0] = wiggled
        assert diff_runs(old, new, tolerance=0.02) == []

    def test_new_metric_reported(self):
        old = sample_records()
        new = sample_records()
        new[1].add("tD=1.85", "MB/s", 914, 962.0)
        report = diff_runs(old, new)
        assert any(line.startswith("NEW") for line in report)

    def test_real_experiment_exports(self):
        from repro.experiments import fig12_td
        record, _ = fig12_td.run()
        text = to_csv([record])
        assert "fig12" in text
        assert load_json(to_json([record]))[0].experiment_id == "fig12"
