"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.call_at(300, lambda: order.append("c"))
        eng.call_at(100, lambda: order.append("a"))
        eng.call_at(200, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        order = []
        for tag in "abcde":
            eng.call_at(50, lambda t=tag: order.append(t))
        eng.run()
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        eng = Engine()
        seen = []
        eng.call_at(42, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42]
        assert eng.now == 42

    def test_call_after_is_relative(self):
        eng = Engine()
        seen = []
        eng.call_at(10, lambda: eng.call_after(5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [15]

    def test_scheduling_into_past_raises(self):
        eng = Engine()
        eng.call_at(100, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(50, lambda: None)

    def test_negative_delay_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_after(-1, lambda: None)


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        eng = Engine()
        hits = []
        eng.call_at(100, lambda: hits.append(1))
        eng.call_at(900, lambda: hits.append(2))
        eng.run(until=500)
        assert hits == [1]
        assert eng.now == 500
        eng.run()
        assert hits == [1, 2]

    def test_run_max_events(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.call_at(i, lambda i=i: hits.append(i))
        eng.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert eng.step() is False

    def test_peek(self):
        eng = Engine()
        assert eng.peek() is None
        eng.call_at(77, lambda: None)
        assert eng.peek() == 77

    def test_drain_discards(self):
        eng = Engine()
        eng.call_at(10, lambda: pytest.fail("should not run"))
        eng.drain()
        eng.run()
        assert eng.pending == 0

    def test_events_executed_counter(self):
        eng = Engine()
        for i in range(5):
            eng.call_at(i, lambda: None)
        eng.run()
        assert eng.events_executed == 5

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def inner():
            with pytest.raises(SimulationError):
                eng.run()

        eng.call_at(1, inner)
        eng.run()


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=50))
    def test_execution_order_is_sorted_stable(self, times):
        eng = Engine()
        executed = []
        for i, t in enumerate(times):
            eng.call_at(t, lambda t=t, i=i: executed.append((t, i)))
        eng.run()
        assert executed == sorted(executed)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    def test_clock_monotonic(self, times):
        eng = Engine()
        stamps = []
        for t in times:
            eng.call_at(t, lambda: stamps.append(eng.now))
        eng.run()
        assert stamps == sorted(stamps)
