"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.call_at(300, lambda: order.append("c"))
        eng.call_at(100, lambda: order.append("a"))
        eng.call_at(200, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        order = []
        for tag in "abcde":
            eng.call_at(50, lambda t=tag: order.append(t))
        eng.run()
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        eng = Engine()
        seen = []
        eng.call_at(42, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42]
        assert eng.now == 42

    def test_call_after_is_relative(self):
        eng = Engine()
        seen = []
        eng.call_at(10, lambda: eng.call_after(5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [15]

    def test_scheduling_into_past_raises(self):
        eng = Engine()
        eng.call_at(100, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(50, lambda: None)

    def test_negative_delay_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_after(-1, lambda: None)


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        eng = Engine()
        hits = []
        eng.call_at(100, lambda: hits.append(1))
        eng.call_at(900, lambda: hits.append(2))
        eng.run(until=500)
        assert hits == [1]
        assert eng.now == 500
        eng.run()
        assert hits == [1, 2]

    def test_run_max_events(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.call_at(i, lambda i=i: hits.append(i))
        eng.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert eng.step() is False

    def test_peek(self):
        eng = Engine()
        assert eng.peek() is None
        eng.call_at(77, lambda: None)
        assert eng.peek() == 77

    def test_drain_discards(self):
        eng = Engine()
        eng.call_at(10, lambda: pytest.fail("should not run"))
        eng.drain()
        eng.run()
        assert eng.pending == 0

    def test_events_executed_counter(self):
        eng = Engine()
        for i in range(5):
            eng.call_at(i, lambda: None)
        eng.run()
        assert eng.events_executed == 5

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def inner():
            with pytest.raises(SimulationError):
                eng.run()

        eng.call_at(1, inner)
        eng.run()


class TestCallAtMany:
    def test_batch_matches_individual_calls(self):
        batched, individual = Engine(), Engine()
        out_b, out_i = [], []
        items = [(30, lambda: out_b.append(30)),
                 (10, lambda: out_b.append(10)),
                 (20, lambda: out_b.append(20))]
        batched.call_at_many(items)
        for t in (30, 10, 20):
            individual.call_at(t, lambda t=t: out_i.append(t))
        batched.run()
        individual.run()
        assert out_b == out_i == [10, 20, 30]

    def test_batch_ties_preserve_iteration_order(self):
        eng = Engine()
        order = []
        eng.call_at_many((5, lambda t=tag: order.append(t)) for tag in "abc")
        eng.run()
        assert order == list("abc")

    def test_batch_interleaves_with_singles(self):
        eng = Engine()
        order = []
        eng.call_at(15, lambda: order.append("single"))
        eng.call_at_many([(10, lambda: order.append("b10")),
                          (20, lambda: order.append("b20"))])
        eng.run()
        assert order == ["b10", "single", "b20"]

    def test_batch_scheduling_into_past_raises(self):
        eng = Engine()
        eng.call_at(100, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at_many([(200, lambda: None), (50, lambda: None)])
        # Items before the offender were accepted and stay runnable.
        assert eng.pending == 1
        eng.run()
        assert eng.now == 200

    def test_empty_batch_is_noop(self):
        eng = Engine()
        eng.call_at_many([])
        assert eng.pending == 0


class TestTotalEventsExecuted:
    def test_counts_across_engines(self):
        before = Engine.total_events_executed
        for n in (3, 4):
            eng = Engine()
            for i in range(n):
                eng.call_at(i, lambda: None)
            eng.run()
        assert Engine.total_events_executed - before == 7

    def test_step_counts_too(self):
        before = Engine.total_events_executed
        eng = Engine()
        eng.call_at(1, lambda: None)
        assert eng.step() is True
        assert Engine.total_events_executed - before == 1

    def test_counter_settles_even_if_callback_raises(self):
        before = Engine.total_events_executed
        eng = Engine()
        eng.call_at(1, lambda: None)
        eng.call_at(2, self._boom)
        with pytest.raises(RuntimeError):
            eng.run()
        assert eng.events_executed == 2
        assert Engine.total_events_executed - before == 2

    @staticmethod
    def _boom():
        raise RuntimeError("boom")


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=50))
    def test_execution_order_is_sorted_stable(self, times):
        eng = Engine()
        executed = []
        for i, t in enumerate(times):
            eng.call_at(t, lambda t=t, i=i: executed.append((t, i)))
        eng.run()
        assert executed == sorted(executed)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    def test_clock_monotonic(self, times):
        eng = Engine()
        stamps = []
        for t in times:
            eng.call_at(t, lambda: stamps.append(eng.now))
        eng.run()
        assert stamps == sorted(stamps)
