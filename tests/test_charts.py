"""Tests for the ASCII chart helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.charts import bar_chart, line_chart


class TestBarChart:
    def test_simple_bars(self):
        text = bar_chart(["read", "write"], [100.0, 50.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_value_has_no_bar(self):
        text = bar_chart(["a", "b"], [0.0, 10.0], width=10)
        assert text.splitlines()[0].count("#") == 0

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [1.0, 1000.0], width=30)
        logged = bar_chart(["a", "b"], [1.0, 1000.0], width=30, log=True)
        assert linear.splitlines()[0].count("#") == 1
        assert logged.splitlines()[0].count("#") > 1

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert "empty" in bar_chart([], [])

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=20))
    def test_bars_never_exceed_width(self, values):
        labels = [f"v{i}" for i in range(len(values))]
        text = bar_chart(labels, values, width=40)
        for line in text.splitlines():
            assert line.count("#") <= 41


class TestLineChart:
    def test_renders_grid(self):
        text = line_chart([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=6)
        lines = text.splitlines()
        assert len(lines) == 6 + 3   # header + grid + axis + footer
        assert any("*" in line for line in lines)

    def test_constant_series(self):
        text = line_chart([0, 1], [5, 5])
        assert "*" in text

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1], [1, 2])
        with pytest.raises(ValueError):
            line_chart([], [])

    def test_extents_in_footer(self):
        text = line_chart([1, 16], [100, 200], x_label="threads",
                          y_label="MB/s")
        assert "threads: 1 .. 16" in text
        assert "max 200" in text
