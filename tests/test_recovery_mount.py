"""Tests for crash-consistent recovery: OOB election, torn pages,
durable trim, sealed blocks, health re-seeding and the cold mount."""

import zlib

import pytest

from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.errors import PowerLossInterrupt
from repro.faults.clock import FaultClock
from repro.health.monitor import HealthMonitor, HealthPolicy
from repro.nand.device import NANDDie
from repro.nand.ftl import OOB, FlashTranslationLayer
from repro.nand.spec import ZNANDSpec
from repro.recovery import recover_mount
from repro.units import PAGE_4K, kb, mb, us


def tiny_spec(pages_per_block=16, blocks=24):
    return ZNANDSpec(
        name="test", capacity_bytes=blocks * pages_per_block * kb(4),
        page_bytes=kb(4), pages_per_block=pages_per_block,
        planes_per_die=1, dies=1, initial_bad_block_ppm=0)


def make_ftl(logical_blocks=8, pages_per_block=16, blocks=24, dies=1):
    spec = tiny_spec(pages_per_block, blocks)
    nand = [NANDDie(spec, die_index=i) for i in range(dies)]
    logical = logical_blocks * pages_per_block * kb(4)
    return FlashTranslationLayer(nand, logical)


def page_of(tag: int) -> bytes:
    return bytes([tag % 256]) * kb(4)


def recovered(ftl):
    """Cold-mount twin: a fresh FTL rebuilt from the same dies."""
    return FlashTranslationLayer.recover_from_media(
        ftl.dies, ftl.logical_pages * ftl.spec.page_bytes)


class TestOOBStamping:
    def test_every_program_stamps_the_spare_area(self):
        ftl = make_ftl()
        ppa, _ = ftl.write_page(3, page_of(7))
        oob = ftl.dies[ppa.die].read_oob(ppa.plane, ppa.block, ppa.page)
        assert isinstance(oob, OOB)
        assert oob.lpn == 3 and oob.kind == "data"
        assert oob.crc == zlib.crc32(page_of(7))

    def test_seq_is_monotonic_across_programs(self):
        ftl = make_ftl()
        seqs = []
        for i in range(5):
            ppa, _ = ftl.write_page(i, page_of(i))
            oob = ftl.dies[ppa.die].read_oob(ppa.plane, ppa.block, ppa.page)
            seqs.append(oob.seq)
        assert seqs == sorted(seqs) and len(set(seqs)) == 5

    def test_erase_clears_oob(self):
        die = NANDDie(tiny_spec(), die_index=0)
        stamp = OOB(lpn=0, seq=1, crc=zlib.crc32(page_of(1)))
        die.program_page(0, 0, 0, page_of(1), oob=stamp)
        assert die.read_oob(0, 0, 0) == stamp
        die.erase_block(0, 0)
        assert die.read_oob(0, 0, 0) is None


class TestMediaRecovery:
    def test_rebuilds_mappings_and_data(self):
        ftl = make_ftl()
        for i in range(10):
            ftl.write_page(i, page_of(i))
        fresh, stats = recovered(ftl)
        assert stats.mapped == 10
        assert stats.torn_quarantined == 0
        for i in range(10):
            data, _, _ = fresh.read_page(i)
            assert data == page_of(i)

    def test_max_seq_wins_on_overwrite(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.write_page(0, page_of(2))
        ftl.write_page(0, page_of(3))
        fresh, stats = recovered(ftl)
        data, _, _ = fresh.read_page(0)
        assert data == page_of(3)
        assert stats.mapped == 1
        assert stats.stale == 2

    def test_torn_page_is_quarantined_not_served(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        # A cut mid-overwrite: the new copy tears under its full stamp.
        die = ftl.dies[0]
        meta = ftl._open[0]
        page = die.block_info(meta.plane, meta.block).next_page
        stamp = OOB(lpn=0, seq=ftl._seq, crc=zlib.crc32(page_of(2)))
        die.program_torn(meta.plane, meta.block, page, page_of(2),
                         oob=stamp)
        fresh, stats = recovered(ftl)
        assert stats.torn_quarantined == 1
        data, _, _ = fresh.read_page(0)
        assert data == page_of(1)    # the older intact copy wins

    def test_torn_first_write_leaves_lpn_unmapped(self):
        ftl = make_ftl()
        die = ftl.dies[0]
        clock = FaultClock().cut_on_visit(1, site="ftl.program")
        ftl.fault_clock = clock
        with pytest.raises(PowerLossInterrupt):
            ftl.write_page(5, page_of(9))
        assert die.torn_programs == 1
        fresh, stats = recovered(ftl)
        assert stats.torn_quarantined == 1
        data, _, _ = fresh.read_page(5)
        assert data is None

    def test_unstamped_pages_are_ignored(self):
        ftl = make_ftl()
        ftl.dies[0].program_page(0, 0, 0, page_of(1))   # raw, no OOB
        fresh, stats = recovered(ftl)
        assert stats.unstamped == 1
        assert fresh.mapped_pages == 0

    def test_partial_block_is_reopened_and_writable(self):
        ftl = make_ftl()
        for i in range(3):
            ftl.write_page(i, page_of(i))
        fresh, stats = recovered(ftl)
        assert stats.reopened_blocks == 1
        assert stats.sealed_blocks == 0
        # The resumed open block accepts further appends.
        fresh.write_page(3, page_of(3))
        for i in range(4):
            data, _, _ = fresh.read_page(i)
            assert data == page_of(i)

    def test_recovery_seq_resumes_past_media_max(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        fresh, stats = recovered(ftl)
        ppa, _ = fresh.write_page(0, page_of(2))
        oob = fresh.dies[ppa.die].read_oob(ppa.plane, ppa.block, ppa.page)
        assert oob.seq > stats.max_seq
        twice, _ = recovered(fresh)
        data, _, _ = twice.read_page(0)
        assert data == page_of(2)


class TestDurableTrim:
    def test_trim_survives_remount(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ops = ftl.trim(0)
        assert any(op.kind == "program" for op in ops)
        assert ftl.stats.trim_tombstones == 1
        fresh, stats = recovered(ftl)
        assert stats.tombstones == 1
        data, _, _ = fresh.read_page(0)
        assert data is None    # no resurrection of the old copy

    def test_trim_is_idempotent(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.trim(0)
        assert ftl.trim(0) == []
        assert ftl.trim(1) == []    # never written: nothing to forget
        assert ftl.stats.trim_tombstones == 1

    def test_write_after_trim_supersedes_tombstone(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.trim(0)
        ftl.write_page(0, page_of(2))
        assert ftl.tombstoned_pages == 0
        fresh, _ = recovered(ftl)
        data, _, _ = fresh.read_page(0)
        assert data == page_of(2)

    def test_gc_relocates_tombstone_no_resurrection(self):
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        ftl.trim(0)
        original = ftl._tombstones[0]
        # Fill the rest of the tombstone's block so it closes, then
        # collect it: the tombstone must relocate, never vanish.
        for lpn in range(1, 15):
            ftl.write_page(lpn, page_of(lpn))
        meta = ftl._blocks[(original.die, original.plane, original.block)]
        ftl._collect(meta)
        assert ftl.stats.erases >= 1
        assert ftl._tombstones[0] != original    # relocated, not dropped
        fresh, stats = recovered(ftl)
        assert stats.tombstones == 1
        data, _, _ = fresh.read_page(0)
        assert data is None                      # still durably trimmed
        data, _, _ = fresh.read_page(1)
        assert data == page_of(1)                # neighbours survived GC

    def test_trim_then_cut_then_mount_regression(self):
        """The satellite regression: a cut right after (or during) the
        tombstone program must never resurrect the trimmed LPN with
        *newer* standing than the host observed."""
        ftl = make_ftl()
        ftl.write_page(0, page_of(1))
        clock = FaultClock().cut_on_visit(1, site="ftl.program")
        ftl.fault_clock = clock
        # Cut lands mid-tombstone-program: trim was never acked.
        with pytest.raises(PowerLossInterrupt):
            ftl.trim(0)
        fresh, stats = recovered(ftl)
        assert stats.torn_quarantined == 1    # the torn tombstone
        data, _, _ = fresh.read_page(0)
        assert data == page_of(1)   # un-acked trim: old data legal
        # Now commit the trim, cut *later*, and remount: the tombstone
        # must hold.
        fresh.trim(0)
        clock2 = FaultClock().cut_on_visit(1, site="ftl.program")
        fresh.fault_clock = clock2
        with pytest.raises(PowerLossInterrupt):
            fresh.write_page(7, page_of(7))
        final, stats2 = recovered(fresh)
        assert stats2.tombstones == 1
        data, _, _ = final.read_page(0)
        assert data is None    # committed trim survives the later cut


class TestHealthReseed:
    def test_reseed_below_budget_stays_ok(self):
        monitor = HealthMonitor(policy=HealthPolicy(read_only_bad_blocks=16))
        monitor.reseed({"bad-block": 3, "torn-page": 2})
        assert monitor.state.label == "ok"
        assert monitor.counters.get("bad-block") == 3
        assert monitor.counters.get("torn-page") == 2

    def test_reseed_past_bad_block_budget_enters_read_only(self):
        monitor = HealthMonitor(policy=HealthPolicy(read_only_bad_blocks=4))
        monitor.reseed({"bad-block": 4}, time_ps=123)
        assert monitor.read_only
        assert monitor.timeline[-1].to_state == "read_only"


class TestColdMount:
    def make_system(self):
        return NVDIMMCSystem(cache_bytes=kb(96), device_bytes=mb(1),
                             with_cpu_cache=False, seed=11)

    def test_recover_mount_after_clean_drain(self):
        system = self.make_system()
        t = round(us(1))
        for page in range(30):
            t = system.driver.write_page(page, page_of(page), t)
        power = PowerFailureModel(system.driver)
        power.power_fail(now_ps=t)
        fresh, report = recover_mount(system, journal=power.journal,
                                      now_ps=t)
        assert report.replay_lost == 0
        assert report.replay_crc_mismatches == 0
        assert report.ftl.torn_quarantined == 0
        assert report.health_state == "ok"
        for page in range(30):
            data, t = fresh.driver.read_page(page, t)
            assert data == page_of(page)

    def test_recover_mount_after_interrupted_drain(self):
        system = self.make_system()
        clock = FaultClock().cut_on_visit(5, site="power.drain")
        t = round(us(1))
        for page in range(30):
            t = system.driver.write_page(page, page_of(page), t)
        power = PowerFailureModel(system.driver)
        power.fault_clock = clock
        with pytest.raises(PowerLossInterrupt):
            power.power_fail(now_ps=t)
        fresh, report = recover_mount(system, journal=power.journal,
                                      now_ps=t)
        # The journal reports the undrained slots honestly...
        assert report.replay_lost > 0
        # ...and every page the mount *does* serve is a real payload.
        for page in range(30):
            data, t = fresh.driver.read_page(page, t)
            assert data == page_of(page) or data == bytes(PAGE_4K)

    def test_cold_mount_monitor_is_fresh_and_reseeded(self):
        system = self.make_system()
        t = round(us(1))
        for page in range(5):
            t = system.driver.write_page(page, page_of(page), t)
        old_monitor = system.health
        power = PowerFailureModel(system.driver)
        power.power_fail(now_ps=t)
        fresh, report = recover_mount(system, journal=power.journal)
        assert fresh.health is not old_monitor
        assert fresh.nand.health is fresh.health
        assert fresh.nand.ftl.health is fresh.health
        assert report.to_dict()["health_state"] == "ok"

    def test_remounted_system_accepts_new_writes(self):
        system = self.make_system()
        t = round(us(1))
        for page in range(10):
            t = system.driver.write_page(page, page_of(page), t)
        power = PowerFailureModel(system.driver)
        power.power_fail(now_ps=t)
        fresh, _ = recover_mount(system, journal=power.journal)
        t = fresh.driver.write_page(3, page_of(99), t)
        data, t = fresh.driver.read_page(3, t)
        assert data == page_of(99)
