"""Tests for the DRAM device model: decode, data, refresh."""

import pytest
from hypothesis import given, strategies as st

from repro.ddr.commands import Command, CommandKind
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import DDR4_1600
from repro.errors import ProtocolError
from repro.units import mb

SPEC = DDR4_1600


@pytest.fixture
def dram():
    return DRAMDevice(SPEC, capacity_bytes=mb(64))


class TestAddressDecode:
    def test_zero_address(self, dram):
        parts = dram.decode(0)
        assert (parts.bank, parts.row, parts.column_byte) == (0, 0, 0)

    def test_rows_interleave_across_banks(self, dram):
        a = dram.decode(0)
        b = dram.decode(SPEC.row_size_bytes)
        assert b.bank == (a.bank + 1) % SPEC.total_banks

    def test_column_offset(self, dram):
        parts = dram.decode(100)
        assert parts.column_byte == 100

    def test_out_of_range_rejected(self, dram):
        with pytest.raises(ProtocolError):
            dram.decode(mb(64))
        with pytest.raises(ProtocolError):
            dram.decode(-1)

    @given(st.integers(min_value=0, max_value=mb(64) - 1))
    def test_decode_is_injective_per_row_granularity(self, addr):
        dram = DRAMDevice(SPEC, capacity_bytes=mb(64))
        parts = dram.decode(addr)
        reconstructed = ((parts.row * SPEC.total_banks + parts.bank)
                         * SPEC.row_size_bytes + parts.column_byte)
        assert reconstructed == addr


class TestDataPath:
    def test_write_then_read_burst(self, dram):
        parts = dram.decode(0)
        t = 0
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), t)
        t += SPEC.trcd_ps
        payload = bytes(range(64))
        dram.execute(Command(CommandKind.WR, bank=parts.bank, row=parts.row,
                             column=0), t, data=payload)
        t += SPEC.tccd_ps
        out = dram.execute(Command(CommandKind.RD, bank=parts.bank,
                                   row=parts.row, column=0), t)
        assert out == payload

    def test_unwritten_reads_zero(self, dram):
        parts = dram.decode(0)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), 0)
        out = dram.execute(Command(CommandKind.RD, bank=parts.bank,
                                   row=parts.row, column=3), SPEC.trcd_ps)
        assert out == bytes(64)

    def test_write_requires_full_burst(self, dram):
        parts = dram.decode(0)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), 0)
        with pytest.raises(ProtocolError):
            dram.execute(Command(CommandKind.WR, bank=parts.bank,
                                 row=parts.row, column=0),
                         SPEC.trcd_ps, data=b"short")

    def test_rda_auto_precharges(self, dram):
        parts = dram.decode(0)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), 0)
        dram.execute(Command(CommandKind.RDA, bank=parts.bank,
                             row=parts.row, column=0), SPEC.trcd_ps)
        from repro.ddr.bank import BankState
        assert dram.banks[parts.bank].state is BankState.IDLE


class TestPeekPoke:
    def test_poke_peek_round_trip(self, dram):
        data = bytes(i % 251 for i in range(10_000))
        dram.poke(12345, data)
        assert dram.peek(12345, len(data)) == data

    def test_peek_untouched_is_zero(self, dram):
        assert dram.peek(0, 128) == bytes(128)

    def test_poke_spans_rows(self, dram):
        data = b"\xab" * (SPEC.row_size_bytes * 2)
        dram.poke(SPEC.row_size_bytes // 2, data)
        assert dram.peek(SPEC.row_size_bytes // 2, len(data)) == data
        assert dram.touched_rows >= 2

    def test_poke_visible_via_protocol_read(self, dram):
        dram.poke(0, bytes(range(64)))
        parts = dram.decode(0)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), 0)
        out = dram.execute(Command(CommandKind.RD, bank=parts.bank,
                                   row=parts.row, column=0), SPEC.trcd_ps)
        assert out == bytes(range(64))


class TestRefresh:
    def test_refresh_requires_prea_first(self, dram):
        parts = dram.decode(0)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                             row=parts.row), 0)
        with pytest.raises(ProtocolError):
            dram.execute(Command(CommandKind.REF), SPEC.tras_ps)

    def test_refresh_cycle_blocks_then_completes(self, dram):
        dram.execute(Command(CommandKind.REF), 0)
        parts = dram.decode(0)
        with pytest.raises(ProtocolError):
            dram.execute(Command(CommandKind.ACT, bank=parts.bank,
                                 row=parts.row), 100)
        dram.maybe_complete_refresh(SPEC.trfc_device_ps)
        dram.execute(Command(CommandKind.ACT, bank=parts.bank, row=parts.row),
                     SPEC.trfc_device_ps + SPEC.trp_ps)

    def test_refresh_counter_wraps_at_8k(self, dram):
        dram.refresh_row_counter = 8191
        dram.execute(Command(CommandKind.REF), 0)
        assert dram.refresh_row_counter == 0
        assert dram.refreshes_done == 1

    def test_self_refresh_blocks_everything_but_srx(self, dram):
        dram.execute(Command(CommandKind.SRE), 0)
        with pytest.raises(ProtocolError):
            dram.execute(Command(CommandKind.REF), 10**9)
        dram.execute(Command(CommandKind.SRX), 2 * 10**9)
        assert not dram.in_self_refresh
