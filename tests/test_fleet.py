"""repro.fleet: placement, admission, QoS, report schema, CLI."""

import json

import pytest

from repro.errors import ConfigError
from repro.fleet.cli import main as fleet_main
from repro.fleet.frontend import FleetConfig, run_fleet
from repro.fleet.placement import (
    PLACEMENTS,
    CapacityWeightedPlacement,
    RoundRobinPlacement,
    TenantPinnedPlacement,
    ZipfSampler,
)
from repro.fleet.qos import TenantQoS, percentile_ps
from repro.fleet.report import SCHEMA, render_report, validate_report
from repro.fleet.tenants import default_tenants

QUICK = dict(quick=True, shards=2, requests=2000, seed=7)


@pytest.fixture(scope="module")
def fleet_result():
    """One shared small fleet run (the prefix build dominates cost)."""
    return run_fleet(**QUICK)


# -- zipf sampler ------------------------------------------------------------------


def test_zipf_sampler_is_skewed():
    sampler = ZipfSampler(n=100, theta=1.1, seed=3)
    counts = [0] * 100
    for _ in range(5000):
        counts[sampler.sample()] += 1
    # Rank 0 is the hottest and the head dominates the tail.
    assert counts[0] == max(counts)
    assert sum(counts[:10]) > sum(counts[50:])


def test_zipf_sampler_range_and_degenerate():
    sampler = ZipfSampler(n=1, theta=2.0, seed=0)
    assert all(sampler.sample() == 0 for _ in range(20))
    sampler = ZipfSampler(n=7, theta=0.0, seed=5)
    assert all(0 <= sampler.sample() < 7 for _ in range(200))
    with pytest.raises(ValueError):
        ZipfSampler(n=0, theta=1.0, seed=1)


# -- placement policies ------------------------------------------------------------


def _tenants():
    return default_tenants(quick=True)


def test_round_robin_interleaves():
    policy = RoundRobinPlacement()
    tenants = _tenants()
    shards = [policy.shard_for(tenants[0], 0, key=9, seq=seq, shards=4,
                               weights=(1, 1, 1, 1))
              for seq in range(8)]
    assert shards == [0, 1, 2, 3, 0, 1, 2, 3]


def test_capacity_weighted_is_key_stable_and_weighted():
    policy = CapacityWeightedPlacement()
    tenants = _tenants()
    # The same key always lands on the same shard, whatever the seq.
    for key in range(50):
        homes = {policy.shard_for(tenants[0], 0, key, seq, 4,
                                  (1, 1, 1, 1)) for seq in range(5)}
        assert len(homes) == 1
    # A 3:1 weight split sends the majority of the keyspace to shard 0.
    counts = [0, 0]
    for key in range(2000):
        counts[policy.shard_for(tenants[0], 0, key, 0, 2, (3, 1))] += 1
    assert counts[0] > 2 * counts[1]


def test_tenant_pinned_honours_pins():
    policy = TenantPinnedPlacement()
    tenants = _tenants()   # analytics pinned to 1, ingest pinned to 0
    for key in range(20):
        assert policy.shard_for(tenants[1], 1, key, key, 4,
                                (1,) * 4) == 1
        assert policy.shard_for(tenants[2], 2, key, key, 4,
                                (1,) * 4) == 0
        # Unpinned tenants get a stable hash-derived home.
        home = policy.shard_for(tenants[0], 0, key, key, 4, (1,) * 4)
        assert home == policy.shard_for(tenants[0], 0, key + 1,
                                        key, 4, (1,) * 4)
    # Pins wrap modulo the fleet size.
    assert policy.shard_for(tenants[1], 1, 0, 0, 1, (1,)) == 0


def test_placement_registry():
    assert set(PLACEMENTS) == {
        "round_robin", "capacity_weighted", "tenant_pinned"}
    for name, factory in PLACEMENTS.items():
        assert factory().name == name


# -- config validation -------------------------------------------------------------


def test_config_rejects_bad_values():
    with pytest.raises(ConfigError):
        FleetConfig(shards=0)
    with pytest.raises(ConfigError):
        FleetConfig(placement="nearest_queue")
    with pytest.raises(ConfigError):
        FleetConfig(queue_bound=0)
    with pytest.raises(ConfigError):
        FleetConfig(shards=2, wear_shards=3)


def test_wear_range_rejected_with_actionable_message():
    # K > shards and negative K both name the valid range.
    with pytest.raises(ConfigError, match=r"\[0, 2\]"):
        FleetConfig(shards=2, wear_shards=3)
    with pytest.raises(ConfigError, match=r"\[0, 2\]"):
        FleetConfig(shards=2, wear_shards=-1)
    FleetConfig(shards=2, wear_shards=2)   # boundary is valid


def test_worker_timeout_validation():
    with pytest.raises(ConfigError, match="worker_timeout_s"):
        FleetConfig(shards=2, worker_timeout_s=0)
    with pytest.raises(ConfigError, match="worker_timeout_s"):
        FleetConfig(shards=2, worker_timeout_s=-1.5)
    FleetConfig(shards=2, worker_timeout_s=30.0)
    # The deadline is harness-side only: never in the report config.
    assert "worker_timeout_s" not in \
        FleetConfig(shards=2, worker_timeout_s=30.0).to_dict()


def test_config_defaults_and_weights():
    config = FleetConfig(shards=3, quick=True)
    assert config.request_count == 100_000
    assert FleetConfig(shards=2).request_count == 1_200_000
    assert FleetConfig(shards=2, requests=777).request_count == 777
    assert config.shard_weights == (1, 1, 1)
    assert FleetConfig(shards=4,
                       weights=(2, 1)).shard_weights == (2, 1, 2, 1)


# -- qos accounting ----------------------------------------------------------------


def test_percentile_is_order_statistic():
    assert percentile_ps([], 0.99) == 0
    samples = list(range(100, 0, -1))
    assert percentile_ps(samples, 0.50) == 51
    assert percentile_ps(samples, 0.99) == 100
    assert percentile_ps([42], 0.999) == 42


def test_qos_merge_and_admit_ppm():
    spec = default_tenants(quick=True)[0]
    a = TenantQoS(spec=spec, offered=10, admitted=9, rejected=1,
                  completed=9, latencies_ps=[5, 7])
    b = TenantQoS(spec=spec, offered=10, admitted=10, refused=2,
                  completed=8, latencies_ps=[9])
    a.merge(b)
    assert (a.offered, a.admitted, a.rejected, a.refused) == (20, 19, 1, 2)
    assert a.latencies_ps == [5, 7, 9]
    assert a.admit_ppm == round(1_000_000 * 17 / 20)
    assert TenantQoS(spec=spec).admit_ppm == 1_000_000


# -- end-to-end fleet runs ---------------------------------------------------------


def test_fleet_serves_all_tenants_cleanly(fleet_result):
    result = fleet_result
    assert result.ok
    assert result.data_loss == 0
    assert result.violations == 0
    total_offered = sum(qos.offered for qos in result.tenants)
    assert total_offered == 2000
    for qos in result.tenants:
        assert qos.offered > 0
        assert qos.admitted + qos.rejected == qos.offered
        assert qos.completed + qos.refused + qos.failed_reads \
            == qos.admitted
        assert len(qos.latencies_ps) == qos.completed
    # Every shard saw traffic and swept its written pages.
    for shard in result.shards:
        assert shard.admitted > 0
        assert shard.sweep_pages > 0
        assert shard.health["state"] == "ok"


def test_fleet_report_round_trips(fleet_result):
    payload = json.loads(render_report(fleet_result))
    assert payload["schema"] == SCHEMA
    assert payload["generated_at"] is None
    assert validate_report(payload) == []
    assert payload["totals"]["requests"] == 2000
    assert payload["ok"] is True
    assert len(payload["shards"]) == 2
    assert len(payload["tenants"]) == 3


@pytest.mark.parametrize("mutate,needle", [
    (lambda p: p.__setitem__("schema", "repro.fleet/9"), "schema"),
    (lambda p: p.pop("totals"), "missing report keys"),
    (lambda p: p.__setitem__("extra", 1), "unknown report keys"),
    (lambda p: p["tenants"][0].pop("latency"), "tenants[0]"),
    (lambda p: p["tenants"][0]["latency"].__setitem__("p50_ps", -1),
     "non-negative int"),
    (lambda p: p["shards"][0]["health"].__setitem__("worst", "meh"),
     "health.worst"),
    (lambda p: p["health"]["histogram"].pop("remap"),
     "health.histogram"),
    (lambda p: p.__setitem__("ok", "yes"), "ok must be a bool"),
])
def test_fleet_report_rejects_mutations(fleet_result, mutate, needle):
    payload = json.loads(render_report(fleet_result))
    mutate(payload)
    problems = validate_report(payload)
    assert problems
    assert any(needle in problem for problem in problems)


def test_backpressure_rejects_under_tiny_queue_bound():
    result = run_fleet(**QUICK, queue_bound=1)
    rejected = sum(qos.rejected for qos in result.tenants)
    assert rejected > 0
    assert result.data_loss == 0
    for qos in result.tenants:
        assert qos.admitted + qos.rejected == qos.offered
    # Rejections eat into the admit ratio the SLO gate scores.
    assert any(qos.admit_ppm < 1_000_000 for qos in result.tenants)


def test_wear_drives_health_ladder_without_loss():
    result = run_fleet(**QUICK, wear_shards=1)
    worn = result.shards[0]
    assert worn.health["worst"] != "ok"
    assert worn.health["counters"]
    histogram = result.health_histogram
    assert sum(histogram.values()) == 2
    assert histogram.get("ok", 0) < 2
    assert result.data_loss == 0
    payload = json.loads(render_report(result))
    assert validate_report(payload) == []


def test_read_only_refusals_charge_refused_counter():
    """Regression (ISSUE 9): a shard that degrades to ``read_only``
    mid-run must charge its refusals to the *refused* counter — not the
    admission gate's *rejected* — and they must surface in the
    per-tenant QoS report."""
    from repro.fleet.shard import (Request, ShardPlan, build_prefix,
                                   run_shard, shard_seed)
    from repro.health.monitor import HealthPolicy

    tenants = default_tenants(quick=True)
    snapshot, _ = build_prefix(
        tenants, True, 11,
        health_policy=HealthPolicy(read_only_bad_blocks=2))
    # A write-heavy ingest plan with arrivals spaced far wider than the
    # service time: the admission queue never fills, so every refusal
    # below is the module's, not backpressure's.
    requests = tuple(
        Request(seq=i, tenant=2, arrival_ps=(i + 1) * 50_000_000,
                key=i % 64, write=True, version=i // 64 + 1)
        for i in range(240))
    plan = ShardPlan(shard=0, seed=shard_seed(11, 0), queue_bound=64,
                     wear=8, requests=requests)
    result = run_shard(snapshot, plan, tenants)

    assert result.health["state"] in ("read_only", "fail_stop")
    assert result.refused > 0
    assert result.rejected == 0          # not the admit gate
    qos = result.tenants[2]
    assert qos.refused == result.refused
    assert qos.rejected == 0
    assert qos.admitted == qos.offered
    assert qos.completed + qos.refused + qos.failed_reads == qos.admitted
    # ... and the refusals surface in the QoS report and its gate.
    payload = qos.to_dict()
    assert payload["refused"] == qos.refused
    assert payload["admit_ppm"] < 1_000_000
    assert payload["admit_ppm"] == qos.admit_ppm


def test_collect_fan_out_deadline_names_stuck_shard():
    from concurrent.futures import Future

    from repro.errors import FleetError
    from repro.fleet.frontend import collect_fan_out

    class DummyPool:
        def __init__(self):
            self.calls = []

        def shutdown(self, wait=True, cancel_futures=False):
            self.calls.append((wait, cancel_futures))

    done = Future()
    done.set_result("shard-0-result")
    stuck = Future()   # never resolves: the hung worker
    pool = DummyPool()
    with pytest.raises(FleetError) as exc_info:
        collect_fan_out([done, stuck], [0, 3], pool, timeout_s=0.05)
    assert "shard 3" in str(exc_info.value)
    assert exc_info.value.code == "REPRO-E090"
    # The pool was shut down without joining the stuck worker.
    assert pool.calls == [(False, True)]


def test_collect_fan_out_orders_results_without_deadline():
    from concurrent.futures import Future

    from repro.fleet.frontend import collect_fan_out

    futures = []
    for value in ("a", "b", "c"):
        future = Future()
        future.set_result(value)
        futures.append(future)
    assert collect_fan_out(futures, [0, 1, 2], None,
                           None) == ["a", "b", "c"]


def test_tenant_pinned_run_isolates_pinned_tenants():
    result = run_fleet(**QUICK, placement="tenant_pinned")
    # analytics (index 1) pinned to shard 1, ingest (index 2) to 0.
    assert result.shards[0].tenants[1].offered == 0
    assert result.shards[1].tenants[2].offered == 0
    assert result.shards[1].tenants[1].offered > 0
    assert result.shards[0].tenants[2].offered > 0


# -- cli ---------------------------------------------------------------------------


def test_cli_run_writes_valid_report(tmp_path):
    code = fleet_main(["run", "--quick", "--shards", "2", "--requests",
                       "2000", "--out", str(tmp_path)])
    assert code == 0
    reports = list(tmp_path.glob("FLEET_*.json"))
    assert len(reports) == 1
    payload = json.loads(reports[0].read_text())
    assert validate_report(payload) == []
    assert payload["generated_at"] is not None


def test_cli_rejects_bad_flags(tmp_path, capsys):
    assert fleet_main(["run", "--shards", "0", "--out",
                       str(tmp_path)]) == 2
    assert fleet_main(["run", "--jobs", "zero", "--out",
                       str(tmp_path)]) == 2


def test_cli_rejects_out_of_range_wear(tmp_path, capsys):
    assert fleet_main(["run", "--wear", "-1", "--out",
                       str(tmp_path)]) == 2
    assert fleet_main(["run", "--shards", "2", "--wear", "3", "--out",
                       str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "[0, 2]" in err
    assert fleet_main(["run", "--worker-timeout", "0", "--out",
                       str(tmp_path)]) == 2


def test_cli_list(capsys):
    assert fleet_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in PLACEMENTS:
        assert name in out
    for spec in default_tenants(quick=False):
        assert spec.name in out


def test_top_level_cli_has_fleet():
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(
        ["fleet", "run", "--quick", "--shards", "2"])
    assert args.command == "fleet"
    assert args.shards == 2
